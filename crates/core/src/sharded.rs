//! Multi-session (sharded) crawling with a work-stealing scheduler.
//!
//! The paper's cost metric exists because "most systems have a control on
//! how many queries can be submitted by the same IP address within a
//! period of time" (§1.1). A crawler with access to several client
//! identities can therefore *partition* the data space and crawl the
//! parts concurrently, trading some duplicated slice work for wall-clock
//! time and per-identity quota headroom.
//!
//! # Plans and shards
//!
//! [`Sharded::plan_oversubscribed`] cuts the data space into disjoint
//! [`ShardSpec`]s along one partition attribute:
//!
//! * schemas with **categorical** attributes partition on the one with
//!   the largest domain; its values are dealt round-robin across shards.
//!   When the requested shard count exceeds the domain, each value is
//!   **sub-split** one level further — by the next-widest categorical
//!   attribute ([`ShardSpec::CatSub`]) or, failing that, by sub-ranges of
//!   the first numeric attribute ([`ShardSpec::CatNumRange`]);
//! * **numeric-only schemas** cut the first attribute's declared range
//!   into equal sub-ranges, one rank-shrink instance per shard.
//!
//! Shards cover disjoint subspaces, so concatenating the per-shard bags
//! reconstructs `D` exactly.
//!
//! # Scheduling: identities ≠ shards
//!
//! [`Sharded::new`]`(sessions)` fixes the number of client *identities*
//! (worker threads, each with its own connection from the caller's
//! factory). The *plan* is deliberately finer:
//! [`Sharded::oversubscribed`]`(factor)` produces `≈ sessions × factor`
//! shards, dealt to the workers dynamically by a minimal work-stealing
//! pool (vendored in `crates/compat/workpool`: a shared injector queue
//! plus per-worker deques, LIFO-local/FIFO-steal). A skew-heavy shard
//! then no longer gates wall-clock: while one worker grinds through the
//! heavy subtree, the others drain the rest of the plan instead of
//! idling. With `factor = 1` (the default) the plan degenerates to one
//! shard per session — the static placement this module had before the
//! pool existed — and per-shard costs are unchanged.
//!
//! # Determinism contract
//!
//! Which worker runs which shard depends on timing and is **not**
//! deterministic. Everything the crawl *reports about the data* is:
//! each shard's query sequence (and hence its cost and extracted bag)
//! depends only on the shard spec and the database, never on the worker
//! or the order shards interleave, and the merged report concatenates
//! shard results **in plan order**. The `sharded_steal` differential
//! suite enforces this: a work-stealing run and a sequential
//! one-shard-at-a-time run of the same plan produce identical merged
//! bags, identical total cost, and identical per-shard costs.
//! Scheduling shows up only in wall-clock, in the per-identity
//! aggregation ([`ShardedReport::per_session`]), and in the
//! [`ShardedReport::pool`] counters.
//!
//! # Failure semantics
//!
//! A shard failing with [`CrawlError::Db`] retires its worker (that
//! identity's quota is spent; issuing one doomed query per remaining
//! shard would be waste) — the worker's remaining share is drained by
//! the surviving identities, so one crippled session still salvages
//! every shard a healthy session could reach. [`CrawlError::Unsolvable`]
//! does *not* retire the worker (the connection is fine; the data is
//! not), matching the old one-shard-per-thread behavior of completing
//! every other shard. Either way the first failure (in plan order) is
//! re-raised carrying the merged partial report.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use hdc_types::{AttrKind, DbError, HiddenDatabase, Predicate, Query, Schema};
pub use workpool::{PoolStats, Source as TaskSource, Verdict, WorkerStats};

use crate::categorical::slice_cover::{extended_dfs_from, DfsRoot, LeafMode, SliceTable};
use crate::events::{EventSink, SessionEvent, EVENT_CHANNEL_CAPACITY};
use crate::numeric::rank_shrink::RankShrink;
use crate::orchestrate::{CancelToken, CrawlObserver, Flow, ShardEvent};
use crate::report::{CrawlError, CrawlMetrics, CrawlReport, ProgressPoint};
use crate::repository::{CrawlCheckpoint, CrawlRepository, ShardSnapshot};
use crate::retry::{FaultHistory, RetryPolicy};
use crate::session::{run_crawl_configured, SessionConfig};

/// How one shard's share of the data space is described.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardSpec {
    /// A subset of the partition attribute's values.
    CatValues {
        /// Schema index of the partitioning attribute.
        attr: usize,
        /// The values this shard owns.
        values: Vec<u32>,
    },
    /// One partition value, sub-split by a second categorical attribute:
    /// the shard owns the subtrees `attr = value ∧ sub_attr = w` for
    /// every `w` in `sub_values`. Produced by over-partitioned plans when
    /// the partition domain alone is too coarse.
    CatSub {
        /// Schema index of the partitioning attribute.
        attr: usize,
        /// The pinned partition value.
        value: u32,
        /// Schema index of the secondary (sub-splitting) attribute.
        sub_attr: usize,
        /// The secondary values this shard owns.
        sub_values: Vec<u32>,
    },
    /// One partition value, sub-split by a numeric attribute's sub-range
    /// (for schemas whose only categorical attribute is the partition
    /// attribute). Empty when `lo > hi`.
    CatNumRange {
        /// Schema index of the partitioning attribute.
        attr: usize,
        /// The pinned partition value.
        value: u32,
        /// Schema index of the sub-splitting numeric attribute.
        num_attr: usize,
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// A sub-range of the first numeric attribute's declared bounds
    /// (numeric-only schemas). Empty when `lo > hi`.
    NumRange {
        /// Schema index of the partitioning attribute.
        attr: usize,
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
}

impl ShardSpec {
    /// The covering queries of this shard: one per owned subtree. Used to
    /// audit that a plan's shards are pairwise disjoint and jointly cover
    /// the space.
    pub fn queries(&self, schema: &Schema) -> Vec<Query> {
        match self {
            ShardSpec::CatValues { attr, values } => values
                .iter()
                .map(|&v| Query::any(schema.arity()).with_pred(*attr, Predicate::Eq(v)))
                .collect(),
            ShardSpec::CatSub {
                attr,
                value,
                sub_attr,
                sub_values,
            } => sub_values
                .iter()
                .map(|&w| {
                    Query::any(schema.arity())
                        .with_pred(*attr, Predicate::Eq(*value))
                        .with_pred(*sub_attr, Predicate::Eq(w))
                })
                .collect(),
            ShardSpec::CatNumRange {
                attr,
                value,
                num_attr,
                lo,
                hi,
            } => {
                if lo > hi {
                    Vec::new()
                } else {
                    vec![Query::any(schema.arity())
                        .with_pred(*attr, Predicate::Eq(*value))
                        .with_pred(*num_attr, Predicate::Range { lo: *lo, hi: *hi })]
                }
            }
            ShardSpec::NumRange { attr, lo, hi } => {
                if lo > hi {
                    Vec::new()
                } else {
                    vec![Query::any(schema.arity())
                        .with_pred(*attr, Predicate::Range { lo: *lo, hi: *hi })]
                }
            }
        }
    }

    /// A canonical, stable string naming exactly this shard's share of
    /// the data space. Two plans cut the same way produce the same
    /// signature sequence; checkpoints embed it so a resume against a
    /// different plan (schema, session count, or oversubscription
    /// changed) is detected instead of silently merging mismatched bags.
    pub fn signature(&self) -> String {
        match self {
            ShardSpec::CatValues { attr, values } => format!("cat:{attr}={values:?}"),
            ShardSpec::CatSub {
                attr,
                value,
                sub_attr,
                sub_values,
            } => format!("catsub:{attr}={value}:{sub_attr}={sub_values:?}"),
            ShardSpec::CatNumRange {
                attr,
                value,
                num_attr,
                lo,
                hi,
            } => format!("catnum:{attr}={value}:{num_attr}=[{lo},{hi}]"),
            ShardSpec::NumRange { attr, lo, hi } => format!("num:{attr}=[{lo},{hi}]"),
        }
    }

    /// Parses a [`ShardSpec::signature`] back into the spec — the wire
    /// half of the distributed protocol: a lease coordinator hands out
    /// shards *by signature* (the canonical name is the only thing that
    /// crosses the wire), and the worker reconstructs the spec to crawl
    /// it. Round-trips exactly: `parse_signature(&s.signature()) ==
    /// Some(s)` for every spec. Returns `None` on anything that is not a
    /// well-formed signature.
    pub fn parse_signature(sig: &str) -> Option<ShardSpec> {
        fn values(s: &str) -> Option<Vec<u32>> {
            let inner = s.strip_prefix('[')?.strip_suffix(']')?;
            if inner.trim().is_empty() {
                return Some(Vec::new());
            }
            inner
                .split(',')
                .map(|tok| tok.trim().parse::<u32>().ok())
                .collect()
        }
        fn range(s: &str) -> Option<(i64, i64)> {
            let inner = s.strip_prefix('[')?.strip_suffix(']')?;
            let (lo, hi) = inner.split_once(',')?;
            Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
        }
        if let Some(rest) = sig.strip_prefix("cat:") {
            let (attr, vals) = rest.split_once('=')?;
            return Some(ShardSpec::CatValues {
                attr: attr.parse().ok()?,
                values: values(vals)?,
            });
        }
        if let Some(rest) = sig.strip_prefix("catsub:") {
            let (first, second) = rest.split_once(':')?;
            let (attr, value) = first.split_once('=')?;
            let (sub_attr, sub_vals) = second.split_once('=')?;
            return Some(ShardSpec::CatSub {
                attr: attr.parse().ok()?,
                value: value.parse().ok()?,
                sub_attr: sub_attr.parse().ok()?,
                sub_values: values(sub_vals)?,
            });
        }
        if let Some(rest) = sig.strip_prefix("catnum:") {
            let (first, second) = rest.split_once(':')?;
            let (attr, value) = first.split_once('=')?;
            let (num_attr, bounds) = second.split_once('=')?;
            let (lo, hi) = range(bounds)?;
            return Some(ShardSpec::CatNumRange {
                attr: attr.parse().ok()?,
                value: value.parse().ok()?,
                num_attr: num_attr.parse().ok()?,
                lo,
                hi,
            });
        }
        if let Some(rest) = sig.strip_prefix("num:") {
            let (attr, bounds) = rest.split_once('=')?;
            let (lo, hi) = range(bounds)?;
            return Some(ShardSpec::NumRange {
                attr: attr.parse().ok()?,
                lo,
                hi,
            });
        }
        None
    }

    /// Crawls this shard on `db`, which must view the same logical
    /// database the plan was made for.
    ///
    /// The query sequence depends only on the spec and the database —
    /// not on what else ran on the connection — so a shard can be
    /// crawled on any session, in any order, even on another machine,
    /// and still produce exactly the result the plan promises. The
    /// in-process scheduler relies on this; truly distributed callers
    /// can drive shards through this method directly.
    pub fn crawl(
        &self,
        db: &mut dyn HiddenDatabase,
        schema: &Schema,
    ) -> Result<CrawlReport, CrawlError> {
        self.crawl_configured(db, schema, SessionConfig::default())
    }

    /// [`ShardSpec::crawl`] with a [`SessionConfig`] — retry policy and
    /// cancellation — threaded into the shard's session. Retries do not
    /// change the charged query sequence (a transient failure charges
    /// nothing, and the deterministic server answers the re-issued query
    /// exactly as it would have answered the original), so the
    /// determinism contract holds under faults too.
    pub fn crawl_configured(
        &self,
        db: &mut dyn HiddenDatabase,
        schema: &Schema,
        config: SessionConfig<'_>,
    ) -> Result<CrawlReport, CrawlError> {
        self.crawl_observed_configured(db, schema, config, None)
    }

    /// [`ShardSpec::crawl_configured`] with a direct [`CrawlObserver`]
    /// on the shard's session — the path the sequential (solo
    /// checkpointed) driver uses to stream within-shard events without a
    /// channel. Pool workers instead stream through the config's
    /// [`crate::EventSink`], which [`run_crawl_configured`] turns into a
    /// proxy observer when this argument is `None`.
    pub fn crawl_observed_configured(
        &self,
        db: &mut dyn HiddenDatabase,
        schema: &Schema,
        config: SessionConfig<'_>,
        observer: Option<&mut dyn CrawlObserver>,
    ) -> Result<CrawlReport, CrawlError> {
        let cat_dims = schema.cat_indices();
        let num_dims = schema.num_indices();
        let rank = RankShrink::new();
        run_crawl_configured("sharded-hybrid", db, None, observer, config, |session| match self {
            ShardSpec::NumRange { attr, lo, hi } => {
                if lo > hi {
                    return Ok(()); // empty shard
                }
                let root = Query::any(schema.arity())
                    .with_pred(*attr, Predicate::Range { lo: *lo, hi: *hi });
                rank.run_subspace(session, root, &num_dims)
            }
            ShardSpec::CatNumRange {
                attr,
                value,
                num_attr,
                lo,
                hi,
            } => {
                if lo > hi {
                    return Ok(());
                }
                // Rank-shrink over the numeric subspace of one pinned
                // categorical value, restricted to the owned sub-range —
                // the §5 "numeric server emulation" with one extra
                // constraint.
                let root = Query::any(schema.arity())
                    .with_pred(*attr, Predicate::Eq(*value))
                    .with_pred(*num_attr, Predicate::Range { lo: *lo, hi: *hi });
                rank.run_subspace(session, root, &num_dims)
            }
            ShardSpec::CatValues { attr, values } => {
                if values.is_empty() {
                    return Ok(());
                }
                // Promote the partition attribute to the first tree level
                // so the root-value filter addresses it; keep the others
                // in schema order.
                let mut level_order = vec![*attr];
                level_order.extend(cat_dims.iter().copied().filter(|a| a != attr));
                let mut table = SliceTable::new(schema, &level_order);
                if !num_dims.is_empty() && level_order.len() == 1 {
                    // cat = 1: a numeric leaf's root is its slice query —
                    // cache the overflowed leaf windows so the sub-crawl
                    // needn't re-issue them (same rule as solo Hybrid, so
                    // sharded and solo costs stay aligned).
                    table.cache_leaf_windows();
                }
                let leaf = leaf_mode(&rank, &num_dims);
                extended_dfs_from(
                    session,
                    &mut table,
                    &leaf,
                    DfsRoot {
                        query: Query::any(schema.arity()),
                        level: 0,
                        filter: Some(values),
                    },
                )
            }
            ShardSpec::CatSub {
                attr,
                value,
                sub_attr,
                sub_values,
            } => {
                if sub_values.is_empty() {
                    return Ok(());
                }
                // Promote [attr, sub_attr] to the first two tree levels
                // and start the DFS at the node pinning `attr = value`,
                // expanding only the owned secondary values.
                let mut level_order = vec![*attr, *sub_attr];
                level_order.extend(
                    cat_dims
                        .iter()
                        .copied()
                        .filter(|a| a != attr && a != sub_attr),
                );
                let mut table = SliceTable::new(schema, &level_order);
                let leaf = leaf_mode(&rank, &num_dims);
                extended_dfs_from(
                    session,
                    &mut table,
                    &leaf,
                    DfsRoot {
                        query: Query::any(schema.arity())
                            .with_pred(*attr, Predicate::Eq(*value)),
                        level: 1,
                        filter: Some(sub_values),
                    },
                )
            }
        })
    }

    /// [`ShardSpec::crawl_configured`] with a **resume boundary
    /// callback**: for the extended-DFS shard kinds ([`CatValues`] /
    /// [`CatSub`], the ones [`ResumableShard`] reports resumable) the
    /// shard's root values are crawled one at a time on a *shared* slice
    /// table and session, and `on_root(done, interim)` fires after each
    /// completed root with the session's point-in-time report. A caller
    /// banks those interims as partial [`ShardSnapshot`]s
    /// (`frontier = done`): a crash mid-shard then replays only the
    /// suffix `resume_suffix(done)` instead of the whole shard.
    ///
    /// Equivalence: a root-level child of these shard kinds is always a
    /// slice query — fetched once through the (shared, memoizing) slice
    /// table whether the roots are expanded in one call or one at a
    /// time. The charged query multiset, total cost, tallies, metrics,
    /// and extracted **bag** (as a multiset) are therefore exactly the
    /// one-call crawl's; only database batch grouping and the
    /// interleaving of resolved root slices with sibling subtrees can
    /// differ, neither of which the cost model or the bag observes. The
    /// `resumable_equiv` differential test pins this.
    ///
    /// Non-resumable specs (the numeric kinds) run the ordinary crawl;
    /// `on_root` never fires.
    ///
    /// [`CatValues`]: ShardSpec::CatValues
    /// [`CatSub`]: ShardSpec::CatSub
    pub fn crawl_resumable_configured(
        &self,
        db: &mut dyn HiddenDatabase,
        schema: &Schema,
        config: SessionConfig<'_>,
        mut on_root: impl FnMut(u64, &CrawlReport),
    ) -> Result<CrawlReport, CrawlError> {
        let cat_dims = schema.cat_indices();
        let num_dims = schema.num_indices();
        let rank = RankShrink::new();
        match self {
            ShardSpec::CatValues { attr, values } => {
                run_crawl_configured("sharded-hybrid", db, None, None, config, |session| {
                    if values.is_empty() {
                        return Ok(());
                    }
                    let mut level_order = vec![*attr];
                    level_order.extend(cat_dims.iter().copied().filter(|a| a != attr));
                    let mut table = SliceTable::new(schema, &level_order);
                    if !num_dims.is_empty() && level_order.len() == 1 {
                        // Same leaf-window caching rule as the one-call
                        // path, so costs stay aligned with solo Hybrid.
                        table.cache_leaf_windows();
                    }
                    let leaf = leaf_mode(&rank, &num_dims);
                    for (done, v) in values.iter().enumerate() {
                        extended_dfs_from(
                            session,
                            &mut table,
                            &leaf,
                            DfsRoot {
                                query: Query::any(schema.arity()),
                                level: 0,
                                filter: Some(std::slice::from_ref(v)),
                            },
                        )?;
                        on_root(done as u64 + 1, &session.interim_report());
                    }
                    Ok(())
                })
            }
            ShardSpec::CatSub {
                attr,
                value,
                sub_attr,
                sub_values,
            } => {
                run_crawl_configured("sharded-hybrid", db, None, None, config, |session| {
                    if sub_values.is_empty() {
                        return Ok(());
                    }
                    let mut level_order = vec![*attr, *sub_attr];
                    level_order.extend(
                        cat_dims
                            .iter()
                            .copied()
                            .filter(|a| a != attr && a != sub_attr),
                    );
                    let mut table = SliceTable::new(schema, &level_order);
                    let leaf = leaf_mode(&rank, &num_dims);
                    for (done, w) in sub_values.iter().enumerate() {
                        extended_dfs_from(
                            session,
                            &mut table,
                            &leaf,
                            DfsRoot {
                                query: Query::any(schema.arity())
                                    .with_pred(*attr, Predicate::Eq(*value)),
                                level: 1,
                                filter: Some(std::slice::from_ref(w)),
                            },
                        )?;
                        on_root(done as u64 + 1, &session.interim_report());
                    }
                    Ok(())
                })
            }
            // Numeric shards have no crawler-defined resume boundary:
            // rank-shrink's split tree is adaptive, so the only safe
            // checkpoint is the whole shard.
            _ => self.crawl_observed_configured(db, schema, config, None),
        }
    }
}

/// Shards that can checkpoint **mid-flight** at crawler-defined
/// boundaries, so a crash replays only the un-checkpointed suffix.
///
/// The boundary for the extended-DFS shard kinds is a *root value*: the
/// owned values of [`ShardSpec::CatValues`] (resp. the owned secondary
/// values of [`ShardSpec::CatSub`]) partition the shard's bag, and the
/// crawl visits them in order — so "the first `c` roots are done" is a
/// complete description of a prefix, and the remaining work is exactly
/// the shard made of the remaining roots. Numeric shards (rank-shrink)
/// have no such static boundary and report themselves non-resumable.
///
/// The contract tying this to [`ShardSnapshot::frontier`]
/// (`frontier = Some(c)`):
///
/// * the partial snapshot's tuples and accounting describe exactly the
///   first `c` roots (what [`ShardSpec::crawl_resumable_configured`]'s
///   callback observed);
/// * `resume_suffix(c)` is a spec whose crawl produces exactly the
///   rest: prefix + suffix tuples concatenated = the whole shard's bag
///   as a multiset. Cost is *nearly* additive: the suffix crawl's fresh
///   slice table may re-fetch slices the prefix shared with it, but it
///   never re-pays a prefix root's own slice, so resuming always
///   charges strictly fewer queries than redoing the whole shard (the
///   `fleet_equiv` suite enforces both properties).
pub trait ResumableShard {
    /// How many resume boundaries (root values) this shard has, or
    /// `None` if it cannot checkpoint mid-flight.
    fn resume_points(&self) -> Option<usize>;

    /// The shard covering everything after the first `cursor` completed
    /// roots. `None` for non-resumable shards or an out-of-range cursor.
    /// `resume_suffix(0)` is the whole shard (modulo being a fresh
    /// value).
    fn resume_suffix(&self, cursor: usize) -> Option<ShardSpec>;
}

impl ResumableShard for ShardSpec {
    fn resume_points(&self) -> Option<usize> {
        match self {
            ShardSpec::CatValues { values, .. } => Some(values.len()),
            ShardSpec::CatSub { sub_values, .. } => Some(sub_values.len()),
            ShardSpec::CatNumRange { .. } | ShardSpec::NumRange { .. } => None,
        }
    }

    fn resume_suffix(&self, cursor: usize) -> Option<ShardSpec> {
        match self {
            ShardSpec::CatValues { attr, values } => {
                if cursor > values.len() {
                    return None;
                }
                Some(ShardSpec::CatValues {
                    attr: *attr,
                    values: values[cursor..].to_vec(),
                })
            }
            ShardSpec::CatSub {
                attr,
                value,
                sub_attr,
                sub_values,
            } => {
                if cursor > sub_values.len() {
                    return None;
                }
                Some(ShardSpec::CatSub {
                    attr: *attr,
                    value: *value,
                    sub_attr: *sub_attr,
                    sub_values: sub_values[cursor..].to_vec(),
                })
            }
            ShardSpec::CatNumRange { .. } | ShardSpec::NumRange { .. } => None,
        }
    }
}

fn leaf_mode<'a>(rank: &'a RankShrink<'a>, num_dims: &'a [usize]) -> LeafMode<'a> {
    if num_dims.is_empty() {
        LeafMode::Point
    } else {
        LeafMode::Numeric {
            rank,
            dims: num_dims,
        }
    }
}

/// One executed shard: where it ran, how long it took, what it cost.
#[derive(Debug)]
pub struct ShardRun {
    /// The shard's spec (position in [`ShardedReport::shards`] = position
    /// in the plan).
    pub spec: ShardSpec,
    /// The worker (client identity) that executed the shard.
    pub worker: usize,
    /// How the worker acquired the shard (seeded / injector / stolen).
    pub source: TaskSource,
    /// Wall time of this shard's crawl.
    pub wall: Duration,
    /// Tuples this shard extracted. The tuples themselves live in the
    /// merged report (moved there, not cloned); this count is what
    /// remains per shard.
    pub tuples: u64,
    /// Whether this shard's crawl failed (its `report` is then the
    /// failure's partial).
    pub failed: bool,
    /// Whether this shard was replayed from a checkpoint instead of
    /// crawled: its accounting comes from the snapshot (it charged its
    /// queries in the run that produced the checkpoint, not in this one)
    /// and its `worker`/`source`/`wall` are placeholders.
    pub restored: bool,
    /// The shard's crawl report — full accounting and progress curve,
    /// with `tuples` drained into the merged report.
    pub report: CrawlReport,
}

/// Result of a sharded crawl.
#[derive(Debug)]
pub struct ShardedReport {
    /// The union of all shards' extractions (exactly `D` on success),
    /// concatenated in plan order.
    pub merged: CrawlReport,
    /// Per-identity aggregates, indexed by session: every counter of
    /// every shard the identity executed, summed. Tuples and progress
    /// live elsewhere (the bag in `merged`, per-shard curves in
    /// `shards`), so `tuples`/`progress` are empty here.
    pub per_session: Vec<CrawlReport>,
    /// Every executed shard, in plan order.
    pub shards: Vec<ShardRun>,
    /// Scheduler counters: per-worker executed/stolen counts, busy time,
    /// and the run's wall clock.
    pub pool: PoolStats,
}

impl ShardedReport {
    /// The largest single-identity query count — the quota- and
    /// wall-clock-limiting session when queries are metered per client
    /// identity.
    pub fn max_session_queries(&self) -> u64 {
        self.per_session
            .iter()
            .map(|r| r.queries)
            .max()
            .unwrap_or(0)
    }

    /// Total shards acquired by stealing from a peer's deque.
    pub fn steals(&self) -> u64 {
        self.pool.steals()
    }
}

/// Runtime controls for a sharded crawl: the streaming observer, a
/// cross-thread cancellation token, and a checkpoint repository. All
/// optional; `CrawlControls::default()` reproduces the plain
/// [`Sharded::crawl`] behavior.
#[derive(Default)]
pub struct CrawlControls<'a> {
    /// Merge-path event sink (see [`Sharded::crawl_observed`]).
    pub observer: Option<&'a mut dyn CrawlObserver>,
    /// Cooperative cancellation: when the token latches, in-flight shard
    /// sessions abort before their next query and queued shards are
    /// never started. Without one, the crawl allocates an internal token
    /// so a [`CrawlError::Stopped`] shard still halts its peers.
    pub cancel: Option<&'a CancelToken>,
    /// Checkpoint store: load-and-skip finished shards at startup, store
    /// the accumulated [`CrawlCheckpoint`] after every completed shard.
    pub repository: Option<&'a mut dyn CrawlRepository>,
}

impl std::fmt::Debug for CrawlControls<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrawlControls")
            .field("observer", &self.observer.is_some())
            .field("cancel", &self.cancel.is_some())
            .field("repository", &self.repository.is_some())
            .finish()
    }
}

/// A multi-session crawler over `sessions` client identities.
#[derive(Clone, Debug)]
pub struct Sharded {
    sessions: usize,
    oversubscribe: usize,
    retry: RetryPolicy,
    strikes: u32,
}

impl Sharded {
    /// Crawl with `sessions ≥ 1` concurrent sessions and the
    /// static-equivalent plan (one shard per session).
    pub fn new(sessions: usize) -> Self {
        assert!(sessions >= 1, "at least one session required");
        Sharded {
            sessions,
            oversubscribe: 1,
            retry: RetryPolicy::none(),
            strikes: 2,
        }
    }

    /// Over-partitions the plan into `≈ sessions × factor` shards dealt
    /// to the workers dynamically. More shards mean better balance under
    /// skew (a heavy subtree no longer pins a whole identity's share)
    /// at the price of some re-fetched slice work, since each shard
    /// builds its own slice table.
    pub fn oversubscribed(mut self, factor: usize) -> Self {
        assert!(factor >= 1, "oversubscription factor must be ≥ 1");
        self.oversubscribe = factor;
        self
    }

    /// Applies `policy` to every shard session: transient query failures
    /// are retried in place instead of failing the shard (default: no
    /// retries).
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// How many *consecutive* shards may fail with a transient error
    /// (after exhausting their session's retries) before the identity is
    /// considered unhealthy and retired from the pool. A permanent
    /// database error still retires the worker immediately; a successful
    /// shard resets the count. Default 2; must be ≥ 1.
    pub fn transient_strikes(mut self, strikes: u32) -> Self {
        assert!(strikes >= 1, "at least one strike required");
        self.strikes = strikes;
        self
    }

    /// Plans the disjoint covering shards for a schema: the
    /// static-equivalent plan, one shard per session
    /// (`plan_oversubscribed` with factor 1).
    pub fn plan(schema: &Schema, sessions: usize) -> Vec<ShardSpec> {
        Self::plan_oversubscribed(schema, sessions, 1)
    }

    /// Plans `≈ sessions × factor` disjoint covering shards.
    ///
    /// Schemas with categorical attributes partition on the one with the
    /// largest domain, dealing values round-robin (value `v` → shard
    /// `v mod shards`) to balance skewed domains better than contiguous
    /// chunks; since `sessions` divides the shard count, the fine plan
    /// *refines* the factor-1 plan — shards `j ≡ w (mod sessions)`
    /// jointly own exactly the values of the factor-1 plan's shard `w`.
    /// (Which identity *executes* which fine shard is the scheduler's
    /// dynamic choice; only the partition structure is conformal.)
    /// When the domain has fewer values than the requested shard
    /// count, each value is sub-split by the next-widest categorical
    /// attribute, or by sub-ranges of the first numeric attribute, or —
    /// for single-attribute categorical schemas, where no finer
    /// partition exists — kept as one shard per value. Numeric-only
    /// schemas split the first attribute's declared range evenly.
    /// Shards may be empty when the requested count exceeds the domain.
    pub fn plan_oversubscribed(
        schema: &Schema,
        sessions: usize,
        factor: usize,
    ) -> Vec<ShardSpec> {
        assert!(sessions >= 1);
        assert!(factor >= 1);
        let target = sessions.saturating_mul(factor);
        let widest_cat = schema
            .cat_indices()
            .into_iter()
            .max_by_key(|&a| schema.kind(a).domain_size().expect("categorical"));
        let Some(attr) = widest_cat else {
            // Numeric-only schema: equal sub-ranges of the first attribute.
            let attr = 0;
            let AttrKind::Numeric { min, max } = schema.kind(attr) else {
                unreachable!("schemas are non-empty and all-numeric here")
            };
            return split_range(min, max, target)
                .into_iter()
                .map(|(lo, hi)| ShardSpec::NumRange { attr, lo, hi })
                .collect();
        };
        let size = schema.kind(attr).domain_size().expect("categorical");
        if size as usize >= target || factor == 1 {
            // Enough values to deal one subtree set per shard (factor 1
            // keeps the historical shape even when values run short:
            // `sessions` shards, some possibly empty).
            let mut values: Vec<Vec<u32>> = vec![Vec::new(); target];
            for v in 0..size {
                values[(v as usize) % target].push(v);
            }
            return values
                .into_iter()
                .map(|values| ShardSpec::CatValues { attr, values })
                .collect();
        }
        // Fewer values than requested shards: sub-split every value.
        let per_value = target.div_ceil(size as usize);
        let sub_cat = schema
            .cat_indices()
            .into_iter()
            .filter(|&a| a != attr)
            .max_by_key(|&a| schema.kind(a).domain_size().expect("categorical"));
        let mut shards = Vec::new();
        if let Some(sub_attr) = sub_cat {
            let sub_size = schema.kind(sub_attr).domain_size().expect("categorical");
            let pieces = per_value.min(sub_size as usize);
            for value in 0..size {
                let mut groups: Vec<Vec<u32>> = vec![Vec::new(); pieces];
                for w in 0..sub_size {
                    groups[(w as usize) % pieces].push(w);
                }
                for sub_values in groups {
                    shards.push(ShardSpec::CatSub {
                        attr,
                        value,
                        sub_attr,
                        sub_values,
                    });
                }
            }
        } else if let Some(&num_attr) = schema.num_indices().first() {
            let AttrKind::Numeric { min, max } = schema.kind(num_attr) else {
                unreachable!("num_indices returns numeric attributes")
            };
            for value in 0..size {
                for (lo, hi) in split_range(min, max, per_value) {
                    shards.push(ShardSpec::CatNumRange {
                        attr,
                        value,
                        num_attr,
                        lo,
                        hi,
                    });
                }
            }
        } else {
            // Single categorical attribute: one value per shard is the
            // finest partition that exists.
            for value in 0..size {
                shards.push(ShardSpec::CatValues {
                    attr,
                    values: vec![value],
                });
            }
        }
        shards
    }

    /// Runs the sharded crawl. `factory(s)` creates session `s`'s own
    /// connection to the hidden database (its own identity/quota); all
    /// connections must view the *same* logical database.
    ///
    /// Each of the `sessions` workers owns one connection for its whole
    /// lifetime and crawls the shards the scheduler deals it, one at a
    /// time. Results are merged in plan order, so the extracted bag and
    /// every per-shard cost are deterministic regardless of scheduling
    /// (see the module docs for the exact contract).
    pub fn crawl<D, F>(&self, factory: F) -> Result<ShardedReport, CrawlError>
    where
        D: HiddenDatabase + Send,
        F: Fn(usize) -> D + Sync,
    {
        self.crawl_controlled(factory, CrawlControls::default())
    }

    /// [`Sharded::crawl`] with [`CrawlControls`] — observer, cancellation
    /// token, and checkpoint repository — attached. This is the
    /// fully-general entry point for the paper's hybrid algorithm; the
    /// `crawl`/`crawl_with`/`crawl_observed` family are thin wrappers.
    ///
    /// With a repository, the crawl loads any existing checkpoint first
    /// (panicking if its plan does not match this crawl's plan), replays
    /// the snapshotted shards without issuing a single query, crawls only
    /// the remainder, and stores the updated checkpoint after every
    /// completed shard. The merged report of a resumed crawl is
    /// bit-identical to an uninterrupted run's.
    pub fn crawl_controlled<D, F>(
        &self,
        factory: F,
        controls: CrawlControls<'_>,
    ) -> Result<ShardedReport, CrawlError>
    where
        D: HiddenDatabase + Send,
        F: Fn(usize) -> D + Sync,
    {
        let probe = factory(0);
        let schema = probe.schema().clone();
        drop(probe);
        self.crawl_controlled_with_schema(
            &schema.clone(),
            factory,
            move |spec, db: &mut D, config| spec.crawl_configured(db, &schema, config),
            controls,
        )
    }

    /// Runs a sharded crawl with a **caller-supplied per-shard crawler**.
    ///
    /// [`Sharded::crawl`] hard-wires the paper's hybrid algorithm
    /// ([`ShardSpec::crawl`]); this generalization lets other crawlers
    /// ride the same plan, pool, retirement, and merge machinery — the
    /// top-k-barrier crawler (`hdc-barrier`) parallelizes across
    /// identities exactly this way. The contract `shard_crawl` must
    /// uphold is the scheduler's determinism contract: its query sequence
    /// (and hence cost and bag) may depend only on the shard spec and the
    /// database, never on which worker runs it or what ran before on the
    /// connection.
    pub fn crawl_with<D, F, G>(
        &self,
        factory: F,
        shard_crawl: G,
    ) -> Result<ShardedReport, CrawlError>
    where
        D: HiddenDatabase + Send,
        F: Fn(usize) -> D + Sync,
        G: Fn(&ShardSpec, &mut D) -> Result<CrawlReport, CrawlError> + Sync,
    {
        self.crawl_observed(factory, shard_crawl, None)
    }

    /// [`Sharded::crawl_with`] with a [`CrawlObserver`] attached: one
    /// [`ShardEvent`] fires per completed shard, in deterministic plan
    /// order, as the shard's results are folded into the merged report.
    /// (This entry point takes a *config-less* shard crawler that
    /// manages its own sessions, so within-shard events cannot be
    /// threaded inside it; crawlers that accept a [`SessionConfig`] —
    /// the hybrid family via [`Sharded::crawl`], custom
    /// [`crate::ShardCrawler`]s via the crawl builder — additionally
    /// stream live `on_query`/`on_tuples`/`on_progress` events from the
    /// worker threads through the bounded channel in [`crate::events`].)
    ///
    /// Returning [`Flow::Stop`] from `on_shard` stops the merge: the
    /// cost of every executed shard is still absorbed (partial reports
    /// never lie about spend), but only the tuples of the shards merged
    /// before the stop are kept, and the crawl returns
    /// [`CrawlError::Stopped`] with that prefix-consistent partial —
    /// unless some shard actually *failed*, in which case the failure
    /// (`Db`/`Unsolvable`) is returned instead, carrying the same
    /// partial: a dead identity must never be misread as a voluntary
    /// stop.
    pub fn crawl_observed<D, F, G>(
        &self,
        factory: F,
        shard_crawl: G,
        observer: Option<&mut dyn CrawlObserver>,
    ) -> Result<ShardedReport, CrawlError>
    where
        D: HiddenDatabase + Send,
        F: Fn(usize) -> D + Sync,
        G: Fn(&ShardSpec, &mut D) -> Result<CrawlReport, CrawlError> + Sync,
    {
        let probe = factory(0);
        let schema = probe.schema().clone();
        drop(probe);
        self.crawl_observed_with_schema(&schema, factory, shard_crawl, observer)
    }

    /// [`Sharded::crawl_observed`] for callers that already know the
    /// schema (the crawl builder probes it once to resolve
    /// [`crate::Strategy::Auto`]): skips the extra probe connection a
    /// second `factory(0)` would open — against a real metered site,
    /// connections are not free.
    pub(crate) fn crawl_observed_with_schema<D, F, G>(
        &self,
        schema: &Schema,
        factory: F,
        shard_crawl: G,
        observer: Option<&mut dyn CrawlObserver>,
    ) -> Result<ShardedReport, CrawlError>
    where
        D: HiddenDatabase + Send,
        F: Fn(usize) -> D + Sync,
        G: Fn(&ShardSpec, &mut D) -> Result<CrawlReport, CrawlError> + Sync,
    {
        self.crawl_controlled_with_schema(
            schema,
            factory,
            // A config-less shard crawler manages its own sessions; the
            // sharded retry/cancel config cannot reach inside it.
            |spec, db, _config| shard_crawl(spec, db),
            CrawlControls {
                observer,
                ..CrawlControls::default()
            },
        )
    }

    /// The fully-general sharded driver: a *configured* per-shard
    /// crawler (it receives the [`SessionConfig`] carrying this
    /// `Sharded`'s retry policy and the crawl's halt token) plus
    /// [`CrawlControls`]. Everything else funnels here.
    pub(crate) fn crawl_controlled_with_schema<D, F, G>(
        &self,
        schema: &Schema,
        factory: F,
        shard_crawl: G,
        controls: CrawlControls<'_>,
    ) -> Result<ShardedReport, CrawlError>
    where
        D: HiddenDatabase + Send,
        F: Fn(usize) -> D + Sync,
        G: Fn(&ShardSpec, &mut D, SessionConfig<'_>) -> Result<CrawlReport, CrawlError> + Sync,
    {
        let CrawlControls {
            mut observer,
            cancel,
            mut repository,
        } = controls;
        let plan = Self::plan_oversubscribed(schema, self.sessions, self.oversubscribe);
        let signatures: Vec<String> = plan.iter().map(ShardSpec::signature).collect();

        // Resume: split the plan into snapshotted shards (replayed
        // without a query) and pending ones (crawled below).
        let mut restored: Vec<Option<ShardSnapshot>> = (0..plan.len()).map(|_| None).collect();
        if let Some(repo) = repository.as_deref_mut() {
            match repo.load() {
                Ok(None) => {}
                Ok(Some(checkpoint)) => {
                    // A stale checkpoint is a typed, recoverable error —
                    // the caller prints the hint and exits cleanly — not
                    // a panic that would take a whole fleet down.
                    if let Err(e) = checkpoint.verify_plan(&signatures) {
                        return Err(CrawlError::Db {
                            error: DbError::Backend(e.to_string()),
                            partial: Box::new(blank_report("sharded-hybrid")),
                        });
                    }
                    for snap in checkpoint.shards {
                        // Partial (frontier-bearing) snapshots belong to
                        // the lease coordinator's salvage path; whole-plan
                        // resume re-crawls such shards from scratch, which
                        // is always correct.
                        if !snap.is_complete() {
                            continue;
                        }
                        let index = snap.index;
                        restored[index] = Some(snap);
                    }
                }
                Err(e) => {
                    return Err(CrawlError::Db {
                        error: DbError::Backend(format!("checkpoint load failed: {e}")),
                        partial: Box::new(blank_report("sharded-hybrid")),
                    })
                }
            }
        }
        let tasks: Vec<(usize, ShardSpec)> = plan
            .iter()
            .enumerate()
            .filter(|(i, _)| restored[*i].is_none())
            .map(|(i, spec)| (i, spec.clone()))
            .collect();
        // Work already replayed from the checkpoint, so live progress
        // events resume the crawl's totals instead of restarting at zero.
        let restored_base = restored
            .iter()
            .flatten()
            .fold(ProgressPoint::default(), |acc, snap| ProgressPoint {
                queries: acc.queries + snap.queries,
                tuples: acc.tuples + snap.tuples.len() as u64,
            });

        // The halt flag: the caller's token when provided (so external
        // cancellation reaches every session), else an internal one (so
        // a Stopped shard still halts its in-flight peers).
        let internal_halt = CancelToken::new();
        let halt: &CancelToken = cancel.unwrap_or(&internal_halt);

        // Checkpoint journal: worker threads append one snapshot per
        // completed shard and store the accumulated state, serialized by
        // the mutex. Store failures are latched, never panicked — the
        // crawl itself is healthy, only resumability is degraded — and
        // surfaced once at the end.
        let journal = repository.map(|repo| {
            let seeded = CrawlCheckpoint {
                plan: signatures,
                shards: restored.iter().flatten().cloned().collect(),
            };
            Mutex::new((repo, seeded))
        });
        let store_error: Mutex<Option<std::io::Error>> = Mutex::new(None);

        let pool = workpool::Pool::new(self.sessions);
        // The pool run, parameterized over the live event sink so the
        // observed and unobserved paths share one task closure: with a
        // sink, every shard session streams its events into the bounded
        // channel ([`crate::events`]), tagged with its plan index.
        let run_pool = |events: Option<EventSink>| {
            pool.run_cancellable(
                tasks,
                |w| (factory(w), 0u32, FaultHistory::new()),
                |(db, strikes, history): &mut (D, u32, FaultHistory),
                 ctx,
                 (index, spec): (usize, ShardSpec)| {
                    let begun = Instant::now();
                    let config = SessionConfig {
                        retry: self.retry.clone(),
                        cancel: Some(halt),
                        fault_history: Some(history),
                        events: events.as_ref().map(|sink| sink.for_shard(index)),
                    };
                    let result = shard_crawl(&spec, db, config);
                    // Identity health. A permanent database failure means
                    // this identity is dead (quota exhausted, banned): retire
                    // the worker instead of burning one doomed query per
                    // remaining shard. A *transient* failure that survived
                    // the retry policy marks a strike — the identity is
                    // flaky, but only repeated consecutive strikes retire it.
                    // An unsolvable instance leaves the connection healthy,
                    // and a stopped shard halts the whole crawl instead.
                    let verdict = match &result {
                        Ok(_) => {
                            *strikes = 0;
                            Verdict::Continue
                        }
                        Err(CrawlError::Db { error, .. }) if error.is_transient() => {
                            *strikes += 1;
                            if *strikes >= self.strikes {
                                Verdict::Retire
                            } else {
                                Verdict::Continue
                            }
                        }
                        Err(CrawlError::Db { .. }) => Verdict::Retire,
                        Err(CrawlError::Stopped { .. }) => {
                            halt.cancel();
                            Verdict::Continue
                        }
                        Err(CrawlError::Unsolvable { .. }) => Verdict::Continue,
                    };
                    if let (Ok(report), Some(journal)) = (&result, journal.as_ref()) {
                        let mut guard = journal.lock().expect("journal poisoned");
                        let (repo, checkpoint) = &mut *guard;
                        checkpoint.shards.push(snapshot_of(index, report));
                        if let Err(e) = repo.store(checkpoint) {
                            store_error
                                .lock()
                                .expect("store_error poisoned")
                                .get_or_insert(e);
                        }
                    }
                    (
                        PendingRun {
                            index,
                            spec,
                            worker: ctx.worker,
                            source: ctx.source,
                            wall: begun.elapsed(),
                            result,
                            restored: false,
                        },
                        verdict,
                    )
                },
                Some(halt.flag()),
            )
        };
        let (slots, pool_stats) = match observer.as_deref_mut() {
            None => run_pool(None),
            Some(obs) => {
                // Live streaming: the pool runs on its own (scoped)
                // thread while this one drains the event channel into the
                // observer. The drain ends when the pool drops the last
                // sender; an observer Stop trips the halt token, which
                // every in-flight shard session checks before its next
                // query — prefix-consistent partials, never torn ones.
                let (tx, rx) = chan::bounded(EVENT_CHANNEL_CAPACITY);
                let sink = EventSink::new(tx, 0);
                std::thread::scope(|scope| {
                    let pool_run = scope.spawn(move || run_pool(Some(sink)));
                    let stopped = forward_events(&rx, obs, halt, plan.len(), restored_base);
                    let (slots, mut stats) = pool_run.join().expect("pool thread panicked");
                    // An observer Stop that lands as the pool drains its
                    // last shard can post-date the pool's own sample of
                    // the flag; the merge must still see it.
                    stats.cancelled |= stopped;
                    (slots, stats)
                })
            }
        };

        // Reassemble plan order: live results land at their plan index,
        // snapshotted shards are replayed as pre-completed runs.
        let mut full: Vec<Option<PendingRun>> = (0..plan.len()).map(|_| None).collect();
        for run in slots.into_iter().flatten() {
            let index = run.index;
            full[index] = Some(run);
        }
        for (index, snap) in restored.into_iter().enumerate() {
            let Some(snap) = snap else { continue };
            full[index] = Some(PendingRun {
                index,
                spec: plan[index].clone(),
                worker: 0,
                source: TaskSource::Seeded,
                wall: Duration::ZERO,
                result: Ok(report_of(snap)),
                restored: true,
            });
        }
        merge_results(
            full,
            pool_stats,
            self.sessions,
            observer,
            store_error.into_inner().expect("store_error poisoned"),
        )
    }
}

impl Sharded {
    /// The single-connection sibling of
    /// [`Sharded::crawl_controlled_with_schema`]: executes the same plan
    /// **sequentially, in plan order, on one caller-provided
    /// connection** — no threads, no factory. This is how a *solo* crawl
    /// gains checkpoint/resume: the plan (one session, oversubscription
    /// as the checkpoint granularity) turns a monolithic crawl into
    /// resumable shard-sized steps, and the determinism contract makes
    /// the merged result bit-identical to the pool's for the same plan.
    pub(crate) fn crawl_sequential_controlled(
        &self,
        schema: &Schema,
        db: &mut dyn HiddenDatabase,
        shard_crawl: impl Fn(
            &ShardSpec,
            &mut dyn HiddenDatabase,
            SessionConfig<'_>,
            Option<&mut dyn CrawlObserver>,
        ) -> Result<CrawlReport, CrawlError>,
        controls: CrawlControls<'_>,
    ) -> Result<ShardedReport, CrawlError> {
        let CrawlControls {
            mut observer,
            cancel,
            mut repository,
        } = controls;
        let plan = Self::plan_oversubscribed(schema, self.sessions, self.oversubscribe);
        let signatures: Vec<String> = plan.iter().map(ShardSpec::signature).collect();

        let mut restored: Vec<Option<ShardSnapshot>> = (0..plan.len()).map(|_| None).collect();
        if let Some(repo) = repository.as_deref_mut() {
            match repo.load() {
                Ok(None) => {}
                Ok(Some(checkpoint)) => {
                    // Same typed stale-checkpoint handling as the pool
                    // driver: surface, don't panic.
                    if let Err(e) = checkpoint.verify_plan(&signatures) {
                        return Err(CrawlError::Db {
                            error: DbError::Backend(e.to_string()),
                            partial: Box::new(blank_report("sharded-hybrid")),
                        });
                    }
                    for snap in checkpoint.shards {
                        if !snap.is_complete() {
                            continue; // salvage-path partials: re-crawl whole
                        }
                        let index = snap.index;
                        restored[index] = Some(snap);
                    }
                }
                Err(e) => {
                    return Err(CrawlError::Db {
                        error: DbError::Backend(format!("checkpoint load failed: {e}")),
                        partial: Box::new(blank_report("sharded-hybrid")),
                    })
                }
            }
        }

        let internal_halt = CancelToken::new();
        let halt: &CancelToken = cancel.unwrap_or(&internal_halt);
        let mut journal = repository.map(|repo| {
            let seeded = CrawlCheckpoint {
                plan: signatures,
                shards: restored.iter().flatten().cloned().collect(),
            };
            (repo, seeded)
        });
        let mut store_error: Option<std::io::Error> = None;

        let began = Instant::now();
        let mut stats = WorkerStats::default();
        let mut full: Vec<Option<PendingRun>> = (0..plan.len()).map(|_| None).collect();
        for (index, snap) in restored.into_iter().enumerate() {
            let Some(snap) = snap else { continue };
            full[index] = Some(PendingRun {
                index,
                spec: plan[index].clone(),
                worker: 0,
                source: TaskSource::Seeded,
                wall: Duration::ZERO,
                result: Ok(report_of(snap)),
                restored: true,
            });
        }
        let mut strikes = 0u32;
        let history = FaultHistory::new();
        // Crawl-wide (queries, tuples) completed so far — checkpointed
        // work included — so within-shard progress events report crawl
        // totals, not shard-local ones.
        let mut base = full
            .iter()
            .flatten()
            .filter_map(|run| run.result.as_ref().ok())
            .fold(ProgressPoint::default(), |acc, report| ProgressPoint {
                queries: acc.queries + report.queries,
                tuples: acc.tuples + report.tuples.len() as u64,
            });
        for (index, spec) in plan.iter().enumerate() {
            if full[index].is_some() {
                continue; // replayed from the checkpoint
            }
            if halt.is_cancelled() {
                break;
            }
            let begun = Instant::now();
            let config = SessionConfig {
                retry: self.retry.clone(),
                cancel: Some(halt),
                fault_history: Some(&history),
                events: None,
            };
            // One connection, one thread: the observer rides directly on
            // the shard's session (no channel), re-based onto the crawl's
            // running totals.
            let mut forwarder = observer
                .as_deref_mut()
                .map(|inner| SoloForwarder { inner, base });
            let result = shard_crawl(
                spec,
                db,
                config,
                forwarder.as_mut().map(|f| f as &mut dyn CrawlObserver),
            );
            {
                let shard_report = match &result {
                    Ok(report) => report,
                    Err(e) => e.partial(),
                };
                base.queries += shard_report.queries;
                base.tuples += shard_report.tuples.len() as u64;
            }
            stats.busy += begun.elapsed();
            stats.executed += 1;
            if index == 0 {
                stats.seeded += 1;
            } else {
                stats.injected += 1;
            }
            // Same identity-health rules as the pool path, for the one
            // identity there is.
            let retire = match &result {
                Ok(_) => {
                    strikes = 0;
                    false
                }
                Err(CrawlError::Db { error, .. }) if error.is_transient() => {
                    strikes += 1;
                    strikes >= self.strikes
                }
                Err(CrawlError::Db { .. }) => true,
                Err(CrawlError::Stopped { .. }) => {
                    halt.cancel();
                    false
                }
                Err(CrawlError::Unsolvable { .. }) => false,
            };
            if let (Ok(report), Some((repo, checkpoint))) = (&result, journal.as_mut()) {
                checkpoint.shards.push(snapshot_of(index, report));
                if let Err(e) = repo.store(checkpoint) {
                    store_error.get_or_insert(e);
                }
            }
            full[index] = Some(PendingRun {
                index,
                spec: spec.clone(),
                worker: 0,
                source: if index == 0 {
                    TaskSource::Seeded
                } else {
                    TaskSource::Injected
                },
                wall: begun.elapsed(),
                result,
                restored: false,
            });
            if retire {
                stats.retired = true;
                break;
            }
        }
        let unrun = full.iter().filter(|slot| slot.is_none()).count();
        let pool = PoolStats {
            workers: 1,
            wall: began.elapsed(),
            per_worker: vec![stats],
            unrun,
            cancelled: halt.is_cancelled(),
        };
        merge_results(full, pool, 1, observer, store_error)
    }
}

/// Drains the live event channel into the crawl's observer while the
/// pool runs, until every sender is gone. Query and tuple events forward
/// as-is (tagged per shard at the source); per-shard progress points are
/// aggregated into crawl totals — `base` seeds them with
/// checkpoint-restored work — and deduplicated, so the observer sees one
/// monotone `(queries, tuples)` stream for the whole crawl.
///
/// Any [`Flow::Stop`] trips `halt` (stopping every in-flight shard at
/// its next query) and silences forwarding, but the drain keeps
/// consuming so producers blocked on the bounded channel wind down
/// instead of deadlocking. Returns whether the observer stopped the
/// crawl.
fn forward_events(
    rx: &chan::Receiver<SessionEvent>,
    observer: &mut dyn CrawlObserver,
    halt: &CancelToken,
    plan_len: usize,
    base: ProgressPoint,
) -> bool {
    let mut per_shard = vec![ProgressPoint::default(); plan_len];
    let mut last: Option<ProgressPoint> = None;
    let mut stopped = false;
    while let Ok(event) = rx.recv() {
        if stopped {
            continue;
        }
        let flow = match event {
            SessionEvent::Query { query, outcome, .. } => observer.on_query(&query, &outcome),
            SessionEvent::Tuples { tuples, .. } => observer.on_tuples(&tuples),
            SessionEvent::Progress { shard, point } => {
                per_shard[shard] = point;
                let total = per_shard.iter().fold(base, |acc, p| ProgressPoint {
                    queries: acc.queries + p.queries,
                    tuples: acc.tuples + p.tuples,
                });
                if last == Some(total) {
                    Flow::Continue
                } else {
                    last = Some(total);
                    observer.on_progress(total)
                }
            }
        };
        if flow == Flow::Stop {
            halt.cancel();
            stopped = true;
        }
    }
    stopped
}

/// The sequential driver's within-shard event relay: passes query and
/// tuple events straight through and re-bases the shard-local progress
/// points onto the crawl's running totals, so a solo checkpointed crawl
/// reports the same monotone crawl-wide curve the pool's drain thread
/// produces.
struct SoloForwarder<'o> {
    inner: &'o mut dyn CrawlObserver,
    base: ProgressPoint,
}

impl CrawlObserver for SoloForwarder<'_> {
    fn on_query(&mut self, query: &Query, outcome: &hdc_types::QueryOutcome) -> Flow {
        self.inner.on_query(query, outcome)
    }

    fn on_tuples(&mut self, tuples: &[hdc_types::Tuple]) -> Flow {
        self.inner.on_tuples(tuples)
    }

    fn on_progress(&mut self, point: ProgressPoint) -> Flow {
        self.inner.on_progress(ProgressPoint {
            queries: self.base.queries + point.queries,
            tuples: self.base.tuples + point.tuples,
        })
    }
}

/// The durable snapshot of a shard's report: complete when `frontier`
/// is `None`, a resumable prefix otherwise (see
/// [`ShardSnapshot::frontier`]).
pub fn snapshot_of_report(
    index: usize,
    report: &CrawlReport,
    frontier: Option<u64>,
) -> ShardSnapshot {
    ShardSnapshot {
        index,
        queries: report.queries,
        resolved: report.resolved,
        overflowed: report.overflowed,
        pruned: report.pruned,
        frontier,
        metrics: report.metrics,
        tuples: report.tuples.clone(),
    }
}

/// The durable snapshot of a completed shard's report.
fn snapshot_of(index: usize, report: &CrawlReport) -> ShardSnapshot {
    snapshot_of_report(index, report, None)
}

/// Rehydrates a snapshot into a shard report. The progress curve is not
/// checkpointed (it describes the run that produced the snapshot, not
/// this one), matching the merge's per-shard-curves-only policy.
fn report_of(snap: ShardSnapshot) -> CrawlReport {
    CrawlReport {
        algorithm: "restored",
        tuples: snap.tuples,
        queries: snap.queries,
        resolved: snap.resolved,
        overflowed: snap.overflowed,
        pruned: snap.pruned,
        metrics: snap.metrics,
        progress: Vec::new(),
    }
}

/// One shard's outcome as it comes off the pool (or out of a
/// checkpoint), before merging.
struct PendingRun {
    index: usize,
    spec: ShardSpec,
    worker: usize,
    source: TaskSource,
    wall: Duration,
    result: Result<CrawlReport, CrawlError>,
    restored: bool,
}

enum Failure {
    Db(DbError),
    Unsolvable(Query),
    /// An observer stopped the crawl (either a shard's own crawl was
    /// stopped by a custom crawler's internal observer, or `on_shard`
    /// stopped the merge).
    Stopped,
}

fn blank_report(algorithm: &'static str) -> CrawlReport {
    CrawlReport {
        algorithm,
        tuples: Vec::new(),
        queries: 0,
        resolved: 0,
        overflowed: 0,
        pruned: 0,
        metrics: CrawlMetrics::default(),
        // Progress curves stay per-shard (shards run concurrently, so a
        // single interleaved curve would be fictitious).
        progress: Vec::new(),
    }
}

/// Adds `from`'s query accounting into `into` (tuples and progress are
/// handled separately — the bag moves into the merged report exactly
/// once).
fn absorb_counts(into: &mut CrawlReport, from: &CrawlReport) {
    into.queries += from.queries;
    into.resolved += from.resolved;
    into.overflowed += from.overflowed;
    into.pruned += from.pruned;
    into.metrics.merge_from(&from.metrics);
}

/// Records one crawl's scheduler counters into the process-wide
/// telemetry registry ([`hdc_obs::registry`]): shards executed, steals,
/// injector hits, retired identities, and a histogram of per-worker
/// idle time. Once per crawl, off the hot path, and gated on
/// [`hdc_obs::enabled`] like every other observation.
fn record_pool_metrics(pool: &PoolStats) {
    if !hdc_obs::enabled() {
        return;
    }
    let r = hdc_obs::registry();
    r.counter(
        "hdc_pool_shards_executed_total",
        "Shards executed by pool workers (excludes checkpoint-restored shards)",
    )
    .add(pool.executed());
    r.counter(
        "hdc_pool_steals_total",
        "Shards stolen from peer worker deques",
    )
    .add(pool.steals());
    r.counter(
        "hdc_pool_injected_total",
        "Shards taken from the shared injector queue",
    )
    .add(pool.injected());
    r.counter(
        "hdc_pool_retired_total",
        "Worker identities retired mid-crawl (dead or repeatedly flaky)",
    )
    .add(pool.per_worker.iter().filter(|w| w.retired).count() as u64);
    let idle = r.histogram(
        "hdc_pool_worker_idle_seconds",
        "Per-worker idle time (pool wall minus busy) per crawl",
        hdc_obs::latency_bounds(),
        hdc_obs::Unit::Nanos,
    );
    for w in 0..pool.per_worker.len() {
        idle.observe_duration(pool.idle(w));
    }
}

/// Merges per-shard outcomes into one report (or one failure carrying
/// everything salvaged across all shards). Tuples are **moved** out of
/// the shard reports into the merged bag — never cloned — in plan order.
/// Each merged shard fires one [`ShardEvent`] at the observer; a
/// [`Flow::Stop`] stops the merge (costs of the remaining shards are
/// still absorbed so the partial never under-reports spend, but their
/// tuples are dropped and no further events fire).
fn merge_results(
    slots: Vec<Option<PendingRun>>,
    pool: PoolStats,
    sessions: usize,
    mut observer: Option<&mut dyn CrawlObserver>,
    store_error: Option<std::io::Error>,
) -> Result<ShardedReport, CrawlError> {
    record_pool_metrics(&pool);
    let total = slots.len();
    let mut merged = blank_report("sharded-hybrid");
    let mut per_session: Vec<CrawlReport> =
        (0..sessions).map(|_| blank_report("sharded-session")).collect();
    let mut shards = Vec::with_capacity(slots.len());
    let mut failure: Option<Failure> = None;
    let mut stopped = false;
    // A cancelled run that produced no failing shard of its own (the
    // token was flipped from outside) must still surface as Stopped, not
    // as a suspiciously short success.
    if pool.cancelled {
        failure = Some(Failure::Stopped);
    }
    for (index, slot) in slots.into_iter().enumerate() {
        // A `None` slot is a shard no surviving worker could run (every
        // identity retired first); the pool counts them in `unrun` and
        // the failure that killed the identities is already recorded.
        let Some(run) = slot else { continue };
        // The first *real* failure (Db/Unsolvable) in plan order is the
        // one re-raised; a per-shard Stopped (a custom crawler's own
        // observer) is recorded only while no real failure exists and
        // never shadows one that surfaces later in the walk — a dead
        // identity must not be misread as a voluntary stop.
        let real_failure_recorded =
            matches!(failure, Some(Failure::Db(_)) | Some(Failure::Unsolvable(_)));
        let (mut report, failed) = match run.result {
            Ok(report) => (report, false),
            Err(CrawlError::Db { error, partial }) => {
                if !real_failure_recorded {
                    failure = Some(Failure::Db(error));
                }
                (*partial, true)
            }
            Err(CrawlError::Unsolvable { witness, partial }) => {
                if !real_failure_recorded {
                    failure = Some(Failure::Unsolvable(witness));
                }
                (*partial, true)
            }
            Err(CrawlError::Stopped { partial }) => {
                if failure.is_none() {
                    failure = Some(Failure::Stopped);
                }
                (*partial, true)
            }
        };
        if stopped {
            // Merge stopped by the observer: keep the accounting truthful
            // (these queries were spent) but drop the tuples.
            absorb_counts(&mut merged, &report);
            if !run.restored {
                absorb_counts(&mut per_session[run.worker], &report);
            }
            continue;
        }
        let tuples = report.tuples.len() as u64;
        merged.tuples.append(&mut report.tuples);
        absorb_counts(&mut merged, &report);
        // Restored shards spent their queries in the run that produced
        // the checkpoint — charging them to this run's identity 0 would
        // fabricate per-session quota pressure that never happened.
        if !run.restored {
            absorb_counts(&mut per_session[run.worker], &report);
        }
        if let Some(obs) = observer.as_deref_mut() {
            let event = ShardEvent {
                index,
                total,
                spec: &run.spec,
                worker: run.worker,
                source: run.source,
                queries: report.queries,
                tuples,
                failed,
                restored: run.restored,
            };
            if obs.on_shard(&event) == Flow::Stop {
                stopped = true;
            }
        }
        shards.push(ShardRun {
            spec: run.spec,
            worker: run.worker,
            source: run.source,
            wall: run.wall,
            tuples,
            failed,
            restored: run.restored,
            report,
        });
    }
    if stopped {
        // A real shard failure outranks the observer's stop: callers
        // must not misread a dead identity or an uncrawlable instance
        // as a voluntary early exit. (Failures are recorded during the
        // full slot walk, stop or not, so one surfacing after the stop
        // index still wins.) The partial carries every shard's cost but
        // only the tuples merged before the stop.
        let partial = Box::new(merged);
        return Err(match failure {
            Some(Failure::Db(error)) => CrawlError::Db { error, partial },
            Some(Failure::Unsolvable(witness)) => CrawlError::Unsolvable { witness, partial },
            Some(Failure::Stopped) | None => CrawlError::Stopped { partial },
        });
    }
    match failure {
        None => {
            // The crawl itself succeeded; a failed checkpoint store must
            // still be loud — the caller believes this crawl is
            // resumable and it is not.
            if let Some(e) = store_error {
                return Err(CrawlError::Db {
                    error: DbError::Backend(format!("checkpoint store failed: {e}")),
                    partial: Box::new(merged),
                });
            }
            Ok(ShardedReport {
                merged,
                per_session,
                shards,
                pool,
            })
        }
        Some(Failure::Db(error)) => Err(CrawlError::Db {
            error,
            partial: Box::new(merged),
        }),
        Some(Failure::Unsolvable(witness)) => Err(CrawlError::Unsolvable {
            witness,
            partial: Box::new(merged),
        }),
        Some(Failure::Stopped) => Err(CrawlError::Stopped {
            partial: Box::new(merged),
        }),
    }
}

/// Splits the inclusive range `[min, max]` into `parts` contiguous
/// inclusive sub-ranges of near-equal width, padding with empty
/// (`lo > hi`) ranges when the domain has fewer values than `parts`.
fn split_range(min: i64, max: i64, parts: usize) -> Vec<(i64, i64)> {
    let width = (max as i128 - min as i128 + 1) as u128;
    let mut ranges = Vec::with_capacity(parts);
    let mut lo = min as i128;
    for s in 0..parts {
        let hi = min as i128 + (width * (s as u128 + 1) / parts as u128) as i128 - 1;
        if lo > hi {
            // Degenerate: more shards than domain values.
            ranges.push((1, 0));
        } else {
            ranges.push((lo as i64, hi as i64));
            lo = hi + 1;
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::verify_complete;
    use crate::Crawler;
    use hdc_server::{Budgeted, HiddenDbServer, ServerConfig};
    use hdc_types::tuple::{cat_tuple, int_tuple};
    use hdc_types::{Tuple, TupleBag, Value};

    fn mixed_schema() -> Schema {
        Schema::builder()
            .categorical("make", 7)
            .numeric("price", 0, 9_999)
            .build()
            .unwrap()
    }

    fn mixed_tuples(n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                let h = crate::theory::mix(i as u64);
                Tuple::new(vec![
                    Value::Cat((h % 7) as u32),
                    Value::Int(((h >> 8) % 10_000) as i64),
                ])
            })
            .collect()
    }

    fn factory<'a>(
        schema: &'a Schema,
        tuples: &'a [Tuple],
        k: usize,
    ) -> impl Fn(usize) -> HiddenDbServer + Sync + 'a {
        move |_s| {
            // Same seed for every session: all sessions see the same
            // logical server (same priorities, same responses).
            HiddenDbServer::new(
                schema.clone(),
                tuples.to_vec(),
                ServerConfig { k, seed: 17 },
            )
            .unwrap()
        }
    }

    #[test]
    fn plan_round_robins_categorical_values() {
        let plan = Sharded::plan(&mixed_schema(), 3);
        assert_eq!(plan.len(), 3);
        assert_eq!(
            plan[0],
            ShardSpec::CatValues {
                attr: 0,
                values: vec![0, 3, 6]
            }
        );
        assert_eq!(
            plan[1],
            ShardSpec::CatValues {
                attr: 0,
                values: vec![1, 4]
            }
        );
        assert_eq!(
            plan[2],
            ShardSpec::CatValues {
                attr: 0,
                values: vec![2, 5]
            }
        );
    }

    #[test]
    fn plan_splits_numeric_ranges_evenly() {
        let schema = Schema::builder().numeric("x", 0, 99).build().unwrap();
        let plan = Sharded::plan(&schema, 4);
        assert_eq!(
            plan,
            vec![
                ShardSpec::NumRange {
                    attr: 0,
                    lo: 0,
                    hi: 24
                },
                ShardSpec::NumRange {
                    attr: 0,
                    lo: 25,
                    hi: 49
                },
                ShardSpec::NumRange {
                    attr: 0,
                    lo: 50,
                    hi: 74
                },
                ShardSpec::NumRange {
                    attr: 0,
                    lo: 75,
                    hi: 99
                },
            ]
        );
    }

    #[test]
    fn oversubscribed_plan_deals_finer_while_domain_lasts() {
        // 7 values, 2 sessions × factor 3 = 6 shards: still one
        // round-robin CatValues deal, just finer.
        let plan = Sharded::plan_oversubscribed(&mixed_schema(), 2, 3);
        assert_eq!(plan.len(), 6);
        assert_eq!(
            plan[0],
            ShardSpec::CatValues {
                attr: 0,
                values: vec![0, 6]
            }
        );
        assert_eq!(
            plan[5],
            ShardSpec::CatValues {
                attr: 0,
                values: vec![5]
            }
        );
        // `sessions` divides the shard count, so the fine plan refines
        // the coarse one: shards j ≡ w (mod sessions) jointly own
        // exactly the factor-1 plan's shard w (a plan-structure
        // invariant; the scheduler assigns fine shards dynamically).
        let coarse = Sharded::plan(&mixed_schema(), 2);
        for (w, coarse_shard) in coarse.iter().enumerate() {
            let mut fine: Vec<u32> = plan
                .iter()
                .enumerate()
                .filter(|(j, _)| j % 2 == w)
                .flat_map(|(_, s)| match s {
                    ShardSpec::CatValues { values, .. } => values.clone(),
                    _ => unreachable!(),
                })
                .collect();
            fine.sort_unstable();
            let ShardSpec::CatValues { values, .. } = coarse_shard else {
                unreachable!()
            };
            assert_eq!(&fine, values);
        }
    }

    #[test]
    fn oversubscribed_plan_sub_splits_by_secondary_categorical() {
        let schema = Schema::builder()
            .categorical("a", 3)
            .categorical("b", 5)
            .numeric("x", 0, 99)
            .build()
            .unwrap();
        // Partition on the widest categorical (b, 5 values); target
        // 8 > 5, so every value splits into ceil(8/5) = 2 pieces of the
        // next-widest categorical (a, 3 values) — 10 shards total.
        let plan = Sharded::plan_oversubscribed(&schema, 2, 4);
        assert_eq!(plan.len(), 10);
        assert_eq!(
            plan[0],
            ShardSpec::CatSub {
                attr: 1,
                value: 0,
                sub_attr: 0,
                sub_values: vec![0, 2]
            }
        );
        assert_eq!(
            plan[1],
            ShardSpec::CatSub {
                attr: 1,
                value: 0,
                sub_attr: 0,
                sub_values: vec![1]
            }
        );
        assert_eq!(
            plan[9],
            ShardSpec::CatSub {
                attr: 1,
                value: 4,
                sub_attr: 0,
                sub_values: vec![1]
            }
        );
    }

    #[test]
    fn oversubscribed_plan_sub_splits_by_numeric_when_single_cat() {
        let schema = Schema::builder()
            .categorical("c", 2)
            .numeric("x", 0, 99)
            .build()
            .unwrap();
        let plan = Sharded::plan_oversubscribed(&schema, 2, 2);
        // target 4 > 2 values: each value splits into 2 numeric
        // sub-ranges.
        assert_eq!(plan.len(), 4);
        assert_eq!(
            plan[0],
            ShardSpec::CatNumRange {
                attr: 0,
                value: 0,
                num_attr: 1,
                lo: 0,
                hi: 49
            }
        );
        assert_eq!(
            plan[3],
            ShardSpec::CatNumRange {
                attr: 0,
                value: 1,
                num_attr: 1,
                lo: 50,
                hi: 99
            }
        );
    }

    #[test]
    fn oversubscribed_plan_caps_at_single_values_for_1d_categorical() {
        let schema = Schema::builder().categorical("only", 4).build().unwrap();
        let plan = Sharded::plan_oversubscribed(&schema, 3, 5);
        // No secondary attribute exists: the finest partition is one
        // value per shard.
        assert_eq!(plan.len(), 4);
        for (v, spec) in plan.iter().enumerate() {
            assert_eq!(
                spec,
                &ShardSpec::CatValues {
                    attr: 0,
                    values: vec![v as u32]
                }
            );
        }
    }

    #[test]
    fn sharded_mixed_crawl_is_complete_for_any_session_count() {
        let schema = mixed_schema();
        let tuples = mixed_tuples(2_000);
        for sessions in [1usize, 2, 3, 8, 16] {
            let report = Sharded::new(sessions)
                .crawl(factory(&schema, &tuples, 32))
                .unwrap_or_else(|e| panic!("sessions={sessions}: {e}"));
            verify_complete(&tuples, &report.merged)
                .unwrap_or_else(|e| panic!("sessions={sessions}: {e}"));
            assert_eq!(report.per_session.len(), sessions);
        }
    }

    #[test]
    fn oversubscribed_crawl_is_complete() {
        let schema = mixed_schema();
        let tuples = mixed_tuples(2_000);
        for (sessions, factor) in [(1usize, 4usize), (2, 2), (2, 8), (3, 4)] {
            let report = Sharded::new(sessions)
                .oversubscribed(factor)
                .crawl(factory(&schema, &tuples, 32))
                .unwrap_or_else(|e| panic!("sessions={sessions} factor={factor}: {e}"));
            verify_complete(&tuples, &report.merged)
                .unwrap_or_else(|e| panic!("sessions={sessions} factor={factor}: {e}"));
            assert_eq!(report.per_session.len(), sessions);
            assert!(report.shards.len() >= sessions * factor.min(7));
        }
    }

    #[test]
    fn single_session_matches_hybrid_cost_shape() {
        let schema = mixed_schema();
        let tuples = mixed_tuples(2_000);
        let sharded = Sharded::new(1)
            .crawl(factory(&schema, &tuples, 32))
            .unwrap();
        let mut db = HiddenDbServer::new(
            schema.clone(),
            tuples.clone(),
            ServerConfig { k: 32, seed: 17 },
        )
        .unwrap();
        let hybrid = crate::Hybrid::new().crawl(&mut db).unwrap();
        assert_eq!(sharded.merged.queries, hybrid.queries);
    }

    #[test]
    fn sharding_balances_work() {
        let schema = mixed_schema();
        let tuples = mixed_tuples(4_000);
        let single = Sharded::new(1)
            .crawl(factory(&schema, &tuples, 32))
            .unwrap();
        let quad = Sharded::new(4)
            .crawl(factory(&schema, &tuples, 32))
            .unwrap();
        // Concurrency wins wall-clock: the busiest session does much less
        // than the single-session total…
        assert!(quad.max_session_queries() < single.merged.queries);
        // …at a bounded total overhead (re-fetched slices etc.).
        assert!(quad.merged.queries <= 2 * single.merged.queries);
    }

    /// The merged bag, total cost, and *per-shard* costs of a
    /// work-stealing run must equal a sequential one-shard-at-a-time run
    /// of the same plan — scheduling is invisible to everything but
    /// wall-clock (see module docs).
    #[test]
    fn stealing_run_matches_sequential_run_of_the_same_plan() {
        let schema = mixed_schema();
        let tuples = mixed_tuples(3_000);
        let (sessions, fact) = (3usize, 4usize);
        let make = factory(&schema, &tuples, 32);

        let stolen = Sharded::new(sessions)
            .oversubscribed(fact)
            .crawl(&make)
            .unwrap();

        let plan = Sharded::plan_oversubscribed(&schema, sessions, fact);
        assert_eq!(stolen.shards.len(), plan.len());
        let mut seq_bag = TupleBag::new();
        let mut seq_total = 0u64;
        for (i, spec) in plan.iter().enumerate() {
            let mut db = make(0);
            let report = spec.crawl(&mut db, &schema).unwrap();
            assert_eq!(
                report.queries, stolen.shards[i].report.queries,
                "shard {i} cost depends on scheduling"
            );
            assert_eq!(report.tuples.len() as u64, stolen.shards[i].tuples);
            seq_total += report.queries;
            for t in report.tuples {
                seq_bag.insert(t);
            }
        }
        assert_eq!(stolen.merged.queries, seq_total);
        let stolen_bag: TupleBag = stolen.merged.tuples.iter().collect();
        assert!(stolen_bag.multiset_eq(&seq_bag));
    }

    #[test]
    fn shard_runs_record_worker_wall_and_tuple_counts() {
        let schema = mixed_schema();
        let tuples = mixed_tuples(2_000);
        let report = Sharded::new(2)
            .oversubscribed(3)
            .crawl(factory(&schema, &tuples, 32))
            .unwrap();
        assert_eq!(report.shards.len(), 6);
        let mut by_worker = [0u64; 2];
        for run in &report.shards {
            assert!(run.worker < 2);
            assert!(!run.failed);
            assert!(run.report.tuples.is_empty(), "tuples moved into merged");
            by_worker[run.worker] += run.report.queries;
        }
        // Per-identity aggregates are exactly the shard totals.
        for (w, &queries) in by_worker.iter().enumerate() {
            assert_eq!(report.per_session[w].queries, queries);
            assert!(report.per_session[w].tuples.is_empty());
        }
        let shard_tuples: u64 = report.shards.iter().map(|r| r.tuples).sum();
        assert_eq!(shard_tuples, report.merged.tuples.len() as u64);
        // Pool accounting covers every shard.
        assert_eq!(report.pool.executed(), 6);
        assert_eq!(report.pool.unrun, 0);
        assert_eq!(report.pool.workers, 2);
    }

    #[test]
    fn numeric_only_sharding() {
        let schema = Schema::builder().numeric("x", 0, 9_999).build().unwrap();
        let tuples: Vec<Tuple> = (0..3_000)
            .map(|i| int_tuple(&[(crate::theory::mix(i) % 10_000) as i64]))
            .collect();
        for (sessions, factor) in [(1usize, 1usize), (3, 1), (5, 1), (2, 6)] {
            let report = Sharded::new(sessions)
                .oversubscribed(factor)
                .crawl(|_s| {
                    HiddenDbServer::new(
                        schema.clone(),
                        tuples.clone(),
                        ServerConfig { k: 64, seed: 3 },
                    )
                    .unwrap()
                })
                .unwrap();
            verify_complete(&tuples, &report.merged).unwrap();
        }
    }

    #[test]
    fn pure_categorical_sharding() {
        let schema = Schema::builder()
            .categorical("a", 5)
            .categorical("b", 6)
            .build()
            .unwrap();
        let tuples: Vec<Tuple> = (0..30u64)
            .flat_map(|p| {
                let copies = 1 + crate::theory::mix(p) % 3;
                (0..copies).map(move |_| cat_tuple(&[(p % 5) as u32, (p / 5) as u32]))
            })
            .collect();
        for factor in [1usize, 4] {
            let report = Sharded::new(2)
                .oversubscribed(factor)
                .crawl(|_s| {
                    HiddenDbServer::new(
                        schema.clone(),
                        tuples.clone(),
                        ServerConfig { k: 4, seed: 5 },
                    )
                    .unwrap()
                })
                .unwrap();
            verify_complete(&tuples, &report.merged).unwrap();
        }
    }

    #[test]
    fn cat_num_sub_split_crawl_is_complete() {
        // Single categorical + numeric: over-partitioning must fall back
        // to numeric sub-ranges per value (CatNumRange shards).
        let schema = Schema::builder()
            .categorical("c", 2)
            .numeric("x", 0, 999)
            .build()
            .unwrap();
        let tuples: Vec<Tuple> = (0..800)
            .map(|i| {
                let h = crate::theory::mix(i);
                Tuple::new(vec![
                    Value::Cat((h % 2) as u32),
                    Value::Int(((h >> 8) % 1000) as i64),
                ])
            })
            .collect();
        let report = Sharded::new(2)
            .oversubscribed(4)
            .crawl(|_s| {
                HiddenDbServer::new(
                    schema.clone(),
                    tuples.clone(),
                    ServerConfig { k: 16, seed: 9 },
                )
                .unwrap()
            })
            .unwrap();
        assert!(report
            .shards
            .iter()
            .all(|r| matches!(r.spec, ShardSpec::CatNumRange { .. })));
        verify_complete(&tuples, &report.merged).unwrap();
    }

    #[test]
    fn more_sessions_than_domain_values() {
        let schema = Schema::builder()
            .categorical("tiny", 2)
            .numeric("x", 0, 999)
            .build()
            .unwrap();
        let tuples: Vec<Tuple> = (0..500)
            .map(|i| {
                let h = crate::theory::mix(i);
                Tuple::new(vec![
                    Value::Cat((h % 2) as u32),
                    Value::Int(((h >> 8) % 1000) as i64),
                ])
            })
            .collect();
        let report = Sharded::new(6)
            .crawl(|_s| {
                HiddenDbServer::new(
                    schema.clone(),
                    tuples.clone(),
                    ServerConfig { k: 16, seed: 7 },
                )
                .unwrap()
            })
            .unwrap();
        verify_complete(&tuples, &report.merged).unwrap();
        // 4 of the 6 shards own no values and issue no queries. (Which
        // *identities* ran the two real shards depends on scheduling, so
        // the deterministic assertion is per shard.)
        assert_eq!(report.shards.len(), 6);
        let idle = report
            .shards
            .iter()
            .filter(|r| r.report.queries == 0)
            .count();
        assert_eq!(idle, 4);
    }

    #[test]
    fn shard_failure_surfaces_with_merged_partial() {
        let schema = mixed_schema();
        let tuples = mixed_tuples(2_000);
        // Session 0 gets a crippling budget; the others are unlimited.
        let result = Sharded::new(3).crawl(|s| {
            let server = HiddenDbServer::new(
                schema.clone(),
                tuples.clone(),
                ServerConfig { k: 32, seed: 17 },
            )
            .unwrap();
            Budgeted::new(server, if s == 0 { 2 } else { u64::MAX })
        });
        match result {
            Err(CrawlError::Db { error, partial }) => {
                assert!(matches!(error, hdc_types::DbError::BudgetExhausted { .. }));
                // The healthy shards' tuples are all salvaged.
                assert!(!partial.tuples.is_empty());
                let truth: hdc_types::TupleBag = tuples.iter().collect();
                let got: hdc_types::TupleBag = partial.tuples.iter().collect();
                for (t, c) in got.iter() {
                    assert!(c <= truth.count(t));
                }
            }
            other => panic!("expected budget failure, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one session")]
    fn zero_sessions_rejected() {
        Sharded::new(0);
    }

    /// The merge-path observer: one `ShardEvent` per shard in plan
    /// order, and a `Flow::Stop` trims the merged bag to the shards
    /// seen so far while the query accounting stays complete (spent is
    /// spent).
    #[test]
    fn on_shard_events_stream_in_plan_order_and_stop_trims_the_merge() {
        use crate::orchestrate::{CrawlObserver, Flow, ShardEvent};

        struct ShardLog {
            seen: Vec<(usize, u64)>,
            stop_at: Option<usize>,
        }

        impl CrawlObserver for ShardLog {
            fn on_shard(&mut self, event: &ShardEvent<'_>) -> Flow {
                self.seen.push((event.index, event.tuples));
                if self.stop_at == Some(event.index) {
                    Flow::Stop
                } else {
                    Flow::Continue
                }
            }
        }

        let schema = mixed_schema();
        let tuples = mixed_tuples(2_000);
        let make = factory(&schema, &tuples, 32);
        let shard_crawl = |spec: &ShardSpec, db: &mut HiddenDbServer| {
            let schema = db.schema().clone();
            spec.crawl(db, &schema)
        };

        // No stop: every shard fires once, in plan order.
        let mut log = ShardLog {
            seen: Vec::new(),
            stop_at: None,
        };
        let full = Sharded::new(2)
            .oversubscribed(3)
            .crawl_observed(&make, shard_crawl, Some(&mut log))
            .unwrap();
        assert_eq!(log.seen.len(), full.shards.len());
        for (i, &(index, tuples)) in log.seen.iter().enumerate() {
            assert_eq!(index, i, "events must arrive in plan order");
            assert_eq!(tuples, full.shards[i].tuples);
        }

        // Stop after the second event: the partial keeps the first two
        // shards' tuples but charges every shard's queries.
        let mut log = ShardLog {
            seen: Vec::new(),
            stop_at: Some(1),
        };
        let err = Sharded::new(2)
            .oversubscribed(3)
            .crawl_observed(&make, shard_crawl, Some(&mut log))
            .unwrap_err();
        assert_eq!(log.seen.len(), 2, "no events after the stop");
        let CrawlError::Stopped { partial } = err else {
            panic!("expected a stopped merge");
        };
        let expected_tuples: u64 = full.shards[..2].iter().map(|r| r.tuples).sum();
        assert_eq!(partial.tuples.len() as u64, expected_tuples);
        assert_eq!(
            partial.queries, full.merged.queries,
            "spent queries stay in the accounting even past the stop"
        );
    }

    /// A real shard failure outranks an observer stop: a dead identity
    /// must surface as `Db`, never be misread as a voluntary stop.
    #[test]
    fn shard_failure_outranks_observer_stop() {
        use crate::orchestrate::{CrawlObserver, Flow, ShardEvent};

        struct StopImmediately;
        impl CrawlObserver for StopImmediately {
            fn on_shard(&mut self, _event: &ShardEvent<'_>) -> Flow {
                Flow::Stop
            }
        }

        let schema = mixed_schema();
        let tuples = mixed_tuples(2_000);
        // Identity 0 is crippled: at least one shard fails with a
        // budget error, whatever the observer does.
        let mut stopper = StopImmediately;
        let result = Sharded::new(3).crawl_observed(
            |s| {
                let server = HiddenDbServer::new(
                    schema.clone(),
                    tuples.clone(),
                    ServerConfig { k: 32, seed: 17 },
                )
                .unwrap();
                Budgeted::new(server, if s == 0 { 2 } else { u64::MAX })
            },
            |spec, db| {
                let schema = db.schema().clone();
                spec.crawl(db, &schema)
            },
            Some(&mut stopper),
        );
        assert!(
            matches!(result, Err(CrawlError::Db { .. })),
            "expected the budget failure to win over the stop, got {result:?}"
        );
    }

    /// The tentpole property: a sharded crawl streams within-shard
    /// `on_query`/`on_tuples`/`on_progress` events to the observer
    /// *live* (they arrive through the bounded channel while the pool
    /// runs and are all delivered by the time the crawl returns), the
    /// progress stream aggregates to crawl-wide totals, and observing
    /// changes nothing about the result.
    #[test]
    fn within_shard_events_stream_live_from_the_pool_and_are_inert() {
        use crate::orchestrate::{CrawlObserver, Flow};

        #[derive(Default)]
        struct Tap {
            queries: u64,
            tuples: u64,
            last_progress: Option<ProgressPoint>,
        }

        impl CrawlObserver for Tap {
            fn on_query(&mut self, _q: &Query, _out: &hdc_types::QueryOutcome) -> Flow {
                self.queries += 1;
                Flow::Continue
            }

            fn on_tuples(&mut self, tuples: &[Tuple]) -> Flow {
                self.tuples += tuples.len() as u64;
                Flow::Continue
            }

            fn on_progress(&mut self, point: ProgressPoint) -> Flow {
                if let Some(last) = self.last_progress {
                    assert!(
                        point.queries >= last.queries && point.tuples >= last.tuples,
                        "aggregated progress must be monotone: {last:?} then {point:?}"
                    );
                }
                self.last_progress = Some(point);
                Flow::Continue
            }
        }

        let schema = mixed_schema();
        let tuples = mixed_tuples(2_000);
        let make = factory(&schema, &tuples, 32);

        let unobserved = Sharded::new(2).oversubscribed(3).crawl(&make).unwrap();
        let mut tap = Tap::default();
        let observed = Sharded::new(2)
            .oversubscribed(3)
            .crawl_controlled(
                &make,
                CrawlControls {
                    observer: Some(&mut tap),
                    ..CrawlControls::default()
                },
            )
            .unwrap();

        // Live events arrived: every charged query and every extracted
        // tuple was streamed out of the worker threads.
        assert_eq!(tap.queries, observed.merged.queries);
        assert_eq!(tap.tuples, observed.merged.tuples.len() as u64);
        assert_eq!(
            tap.last_progress,
            Some(ProgressPoint {
                queries: observed.merged.queries,
                tuples: observed.merged.tuples.len() as u64,
            }),
            "the aggregated progress stream must end at the crawl's totals"
        );

        // Telemetry is inert: observing changed nothing.
        let a: TupleBag = observed.merged.tuples.iter().collect();
        let b: TupleBag = unobserved.merged.tuples.iter().collect();
        assert!(a.multiset_eq(&b));
        assert_eq!(observed.merged.queries, unobserved.merged.queries);
        for (x, y) in observed.shards.iter().zip(&unobserved.shards) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.report.queries, y.report.queries);
        }
    }

    /// A `Flow::Stop` from a live within-shard event trips the crawl's
    /// halt token: in-flight shards stop at their next query, the crawl
    /// returns `Stopped`, and the partial is prefix-consistent (a
    /// sub-bag of the truth that never over-reports).
    #[test]
    fn live_event_stop_halts_in_flight_shards() {
        use crate::orchestrate::{CrawlObserver, Flow};

        struct StopAfter {
            tuples: u64,
            threshold: u64,
        }

        impl CrawlObserver for StopAfter {
            fn on_tuples(&mut self, tuples: &[Tuple]) -> Flow {
                self.tuples += tuples.len() as u64;
                if self.tuples >= self.threshold {
                    Flow::Stop
                } else {
                    Flow::Continue
                }
            }
        }

        let schema = mixed_schema();
        let tuples = mixed_tuples(2_000);
        let make = factory(&schema, &tuples, 32);
        let full = Sharded::new(2).oversubscribed(3).crawl(&make).unwrap();

        let mut stopper = StopAfter {
            tuples: 0,
            threshold: 20,
        };
        let err = Sharded::new(2)
            .oversubscribed(3)
            .crawl_controlled(
                &make,
                CrawlControls {
                    observer: Some(&mut stopper),
                    ..CrawlControls::default()
                },
            )
            .unwrap_err();
        let CrawlError::Stopped { partial } = err else {
            panic!("expected a live-event stop, got another failure");
        };
        assert!(partial.queries > 0, "the crawl had started");
        assert!(
            partial.queries < full.merged.queries,
            "the stop must spare queries the full crawl would have spent"
        );
        // Paid-for work is kept and truthful: a sub-bag of the truth.
        let truth: TupleBag = tuples.iter().collect();
        let got: TupleBag = partial.tuples.iter().collect();
        for (t, c) in got.iter() {
            assert!(c <= truth.count(t), "partial over-reports {t}");
        }
    }

    /// Plans must partition the space: pairwise-disjoint shard queries
    /// whose union matches every tuple exactly once — at every
    /// oversubscription factor, across every sub-splitting mode.
    #[test]
    fn plans_partition_the_space() {
        let schemas = [
            mixed_schema(),
            Schema::builder().numeric("x", -50, 49).build().unwrap(),
            Schema::builder()
                .categorical("a", 4)
                .categorical("b", 11)
                .build()
                .unwrap(),
            Schema::builder()
                .categorical("c", 3)
                .numeric("x", 0, 999)
                .build()
                .unwrap(),
        ];
        for schema in &schemas {
            for sessions in [1usize, 2, 5, 13] {
                for fact in [1usize, 3, 8] {
                    let plan = Sharded::plan_oversubscribed(schema, sessions, fact);
                    let queries: Vec<Query> =
                        plan.iter().flat_map(|s| s.queries(schema)).collect();
                    for (i, a) in queries.iter().enumerate() {
                        for b in &queries[i + 1..] {
                            assert!(a.is_disjoint(b), "{a} overlaps {b}");
                        }
                    }
                    // Coverage: sample tuples all match exactly one query.
                    for i in 0..200u64 {
                        let h = crate::theory::mix(i);
                        let t = Tuple::new(
                            (0..schema.arity())
                                .map(|a| match schema.kind(a) {
                                    hdc_types::AttrKind::Categorical { size } => {
                                        Value::Cat(((h >> (a * 8)) % u64::from(size)) as u32)
                                    }
                                    hdc_types::AttrKind::Numeric { min, max } => {
                                        let span = (max - min + 1) as u64;
                                        Value::Int(min + ((h >> (a * 8)) % span) as i64)
                                    }
                                })
                                .collect::<Vec<_>>(),
                        );
                        let hits = queries.iter().filter(|q| q.matches(&t)).count();
                        assert_eq!(hits, 1, "tuple {t} covered {hits} times");
                    }
                }
            }
        }
    }
}
