//! Crawl results and errors.

use std::fmt;

use hdc_types::{DbError, Query, Tuple};

/// One point of the progressiveness curve: after `queries` queries, the
/// crawler had output `tuples` tuples (Figure 13 plots exactly this,
/// normalized to percentages).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProgressPoint {
    /// Queries issued so far.
    pub queries: u64,
    /// Tuples output so far.
    pub tuples: u64,
}

/// Algorithm-internal counters, always collected (cheap integer
/// increments). These expose *why* a crawl cost what it did — e.g. the
/// paper explains rank-shrink's d-independence on Adult-numeric by 3-way
/// splits being rare (§6, Figure 10b discussion), which
/// [`CrawlMetrics::three_way_splits`] lets experiments verify directly.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct CrawlMetrics {
    /// Rank-/binary-shrink 2-way splits performed.
    pub two_way_splits: u64,
    /// Rank-shrink 3-way splits performed (duplicate-heavy pivots).
    pub three_way_splits: u64,
    /// Slice queries fetched into the lookup table (slice-cover/hybrid).
    pub slice_fetches: u64,
    /// Fetched slices that overflowed (only the bit is kept, §3.2).
    pub slice_overflows: u64,
    /// Child nodes answered locally from a resolved slice (no server
    /// query — the mechanism behind lazy-slice-cover's win).
    pub local_answers: u64,
    /// Rank-shrink sub-crawls launched at categorical leaves (hybrid §5).
    pub leaf_subcrawls: u64,
    /// Slice requests served from the memoized slice table without a
    /// server query (the cross-batch slice-list cache: a slice fetched by
    /// one `MAX_BATCH` window — or by the eager preprocessing phase — is
    /// reused by every later request in the same session).
    pub slice_cache_hits: u64,
    /// Barrier crawler: discriminating expansions performed — each one
    /// turns the k-visible window of an overflowing query into pivot
    /// predicates that demote the known high-ranked tuples out of the
    /// result window (`hdc-barrier`).
    pub barrier_pivots: u64,
    /// Barrier crawler: distinct tuples whose first sighting was *below*
    /// the k-visible frontier (discovery depth ≥ 1) — the tuples the
    /// top-k barrier hides from a naive prober.
    pub barrier_deep_tuples: u64,
    /// Transient query attempts absorbed by the session's
    /// [`RetryPolicy`](crate::RetryPolicy): failures that were re-issued
    /// instead of aborting the crawl. The fault-tolerance theorem in one
    /// counter — a retried crawl's *charged* cost equals the fault-free
    /// cost, and this field is exactly the extra attempts it spent.
    pub transient_retries: u64,
}

impl CrawlMetrics {
    /// Adds `other`'s counters into `self`, field by field.
    ///
    /// Every place that combines reports (the sharded merge, per-identity
    /// aggregation) must go through this method: a new counter added to
    /// the struct then only needs one merge site, instead of being
    /// silently dropped by hand-rolled additions scattered around the
    /// codebase. The `fully_populated_metrics_survive_a_merge` test
    /// enforces the coverage.
    pub fn merge_from(&mut self, other: &CrawlMetrics) {
        // Destructure so adding a field is a compile error here, not a
        // silently-ignored counter.
        let CrawlMetrics {
            two_way_splits,
            three_way_splits,
            slice_fetches,
            slice_overflows,
            local_answers,
            leaf_subcrawls,
            slice_cache_hits,
            barrier_pivots,
            barrier_deep_tuples,
            transient_retries,
        } = other;
        self.two_way_splits += two_way_splits;
        self.three_way_splits += three_way_splits;
        self.slice_fetches += slice_fetches;
        self.slice_overflows += slice_overflows;
        self.local_answers += local_answers;
        self.leaf_subcrawls += leaf_subcrawls;
        self.slice_cache_hits += slice_cache_hits;
        self.barrier_pivots += barrier_pivots;
        self.barrier_deep_tuples += barrier_deep_tuples;
        self.transient_retries += transient_retries;
    }
}

/// The result of a crawl.
#[derive(Clone, Debug)]
pub struct CrawlReport {
    /// Name of the algorithm that produced the report.
    pub algorithm: &'static str,
    /// Every tuple extracted (for a successful crawl: the complete bag
    /// `D`, each tuple reported exactly once per occurrence).
    pub tuples: Vec<Tuple>,
    /// Number of queries issued — the paper's cost metric.
    pub queries: u64,
    /// How many of those queries resolved.
    pub resolved: u64,
    /// How many overflowed.
    pub overflowed: u64,
    /// Queries answered locally by a [`crate::ValidityOracle`] (§1.3
    /// dependency pruning) — these cost nothing and are *not* included in
    /// `queries`; `resolved + overflowed == queries` always holds.
    pub pruned: u64,
    /// Algorithm-internal counters (splits, slice fetches, local answers).
    pub metrics: CrawlMetrics,
    /// The progress curve (monotone in both coordinates).
    pub progress: Vec<ProgressPoint>,
}

impl CrawlReport {
    /// Fraction of issued queries that resolved — 0.0 for an empty crawl
    /// (no queries issued), so the rate is always a finite value in
    /// [0, 1] that experiment tables can aggregate without guarding.
    pub fn resolution_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.resolved as f64 / self.queries as f64
        }
    }

    /// Queries per extracted tuple — 0.0 when nothing was extracted
    /// (an empty crawl spent nothing *per tuple*; returning a finite
    /// value keeps downstream averages and JSON emitters well-defined).
    pub fn queries_per_tuple(&self) -> f64 {
        if self.tuples.is_empty() {
            0.0
        } else {
            self.queries as f64 / self.tuples.len() as f64
        }
    }

    /// Maximum vertical deviation of the (normalized) progress curve from
    /// the diagonal, in [0, 1]. Small values mean the crawler outputs
    /// tuples at a steady rate — the paper's "linear progressiveness"
    /// (Figure 13).
    pub fn progress_deviation(&self) -> f64 {
        let (total_q, total_t) = match self.progress.last() {
            Some(last) if last.queries > 0 && last.tuples > 0 => (last.queries, last.tuples),
            _ => return 0.0,
        };
        self.progress
            .iter()
            .map(|p| {
                let x = p.queries as f64 / total_q as f64;
                let y = p.tuples as f64 / total_t as f64;
                (x - y).abs()
            })
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for CrawlReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} tuples in {} queries ({} resolved, {} overflowed)",
            self.algorithm,
            self.tuples.len(),
            self.queries,
            self.resolved,
            self.overflowed
        )
    }
}

/// A failed crawl. Both variants carry the partial report so callers keep
/// the tuples already paid for.
#[derive(Debug)]
pub enum CrawlError {
    /// The interface failed (budget exhausted, invalid query, transport).
    Db {
        /// The underlying interface error.
        error: DbError,
        /// Everything extracted before the failure (boxed: the report is
        /// large and the error path must stay cheap for `Result`).
        partial: Box<CrawlReport>,
    },
    /// Problem 1 is unsolvable on this database: a single point of the
    /// data space holds more than `k` tuples, so the server can forever
    /// withhold one of them (§1.1). The witness query pins that point.
    Unsolvable {
        /// A point query that overflowed.
        witness: Query,
        /// Everything extracted before detection.
        partial: Box<CrawlReport>,
    },
    /// A [`crate::CrawlObserver`] stopped the crawl early
    /// ([`crate::Flow::Stop`]). Not a failure of the database or the
    /// data — the caller asked to stop spending (e.g. a coverage target
    /// was reached), and the partial report holds everything extracted
    /// and charged up to that point.
    Stopped {
        /// Everything extracted before the stop.
        partial: Box<CrawlReport>,
    },
}

impl CrawlError {
    /// The partial report produced before the failure.
    pub fn partial(&self) -> &CrawlReport {
        match self {
            CrawlError::Db { partial, .. } => partial,
            CrawlError::Unsolvable { partial, .. } => partial,
            CrawlError::Stopped { partial } => partial,
        }
    }

    /// Consumes the error, returning the partial report.
    pub fn into_partial(self) -> CrawlReport {
        match self {
            CrawlError::Db { partial, .. } => *partial,
            CrawlError::Unsolvable { partial, .. } => *partial,
            CrawlError::Stopped { partial } => *partial,
        }
    }
}

impl fmt::Display for CrawlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrawlError::Db { error, partial } => write!(
                f,
                "crawl aborted after {} queries / {} tuples: {error}",
                partial.queries,
                partial.tuples.len()
            ),
            CrawlError::Unsolvable { witness, partial } => write!(
                f,
                "database is not crawlable at k: point query `{witness}` overflowed \
                 (>k duplicates); {} tuples extracted",
                partial.tuples.len()
            ),
            CrawlError::Stopped { partial } => write!(
                f,
                "crawl stopped by observer after {} queries / {} tuples",
                partial.queries,
                partial.tuples.len()
            ),
        }
    }
}

impl std::error::Error for CrawlError {}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_types::tuple::int_tuple;

    fn report(progress: Vec<ProgressPoint>) -> CrawlReport {
        CrawlReport {
            algorithm: "test",
            tuples: vec![int_tuple(&[1]); 10],
            queries: 5,
            resolved: 4,
            overflowed: 1,
            pruned: 0,
            metrics: CrawlMetrics::default(),
            progress,
        }
    }

    /// Every field of a fully-populated metrics value must survive a
    /// merge into a fresh one. The exhaustive struct literal (no
    /// `..Default::default()`) means adding a field breaks this test at
    /// compile time until both the literal and
    /// [`CrawlMetrics::merge_from`] cover it.
    #[test]
    fn fully_populated_metrics_survive_a_merge() {
        let populated = CrawlMetrics {
            two_way_splits: 1,
            three_way_splits: 2,
            slice_fetches: 3,
            slice_overflows: 4,
            local_answers: 5,
            leaf_subcrawls: 6,
            slice_cache_hits: 7,
            barrier_pivots: 8,
            barrier_deep_tuples: 9,
            transient_retries: 10,
        };
        let mut merged = CrawlMetrics::default();
        merged.merge_from(&populated);
        assert_eq!(merged, populated, "merge_from dropped a field");
        // Merging twice doubles every counter — addition, not overwrite.
        merged.merge_from(&populated);
        let CrawlMetrics {
            two_way_splits,
            three_way_splits,
            slice_fetches,
            slice_overflows,
            local_answers,
            leaf_subcrawls,
            slice_cache_hits,
            barrier_pivots,
            barrier_deep_tuples,
            transient_retries,
        } = merged;
        assert_eq!(
            [
                two_way_splits,
                three_way_splits,
                slice_fetches,
                slice_overflows,
                local_answers,
                leaf_subcrawls,
                slice_cache_hits,
                barrier_pivots,
                barrier_deep_tuples,
                transient_retries
            ],
            [2, 4, 6, 8, 10, 12, 14, 16, 18, 20]
        );
    }

    #[test]
    fn rates() {
        let r = report(vec![]);
        assert!((r.resolution_rate() - 0.8).abs() < 1e-12);
        assert!((r.queries_per_tuple() - 0.5).abs() < 1e-12);
    }

    /// Empty crawls must yield finite, zero rates — not NaN, ∞, or a
    /// fictitious 100% resolution — so aggregations never need guards.
    #[test]
    fn zero_query_report_rates_are_zero() {
        let r = CrawlReport {
            algorithm: "t",
            tuples: vec![],
            queries: 0,
            resolved: 0,
            overflowed: 0,
            pruned: 0,
            metrics: CrawlMetrics::default(),
            progress: vec![],
        };
        assert_eq!(r.resolution_rate(), 0.0);
        assert_eq!(r.queries_per_tuple(), 0.0);
        assert_eq!(r.progress_deviation(), 0.0);
        assert!(r.resolution_rate().is_finite());
        assert!(r.queries_per_tuple().is_finite());
    }

    /// Queries without extractions (e.g. a crawl stopped before the
    /// first tuple): still a finite queries-per-tuple.
    #[test]
    fn queries_without_tuples_rate_is_zero_not_infinite() {
        let r = CrawlReport {
            algorithm: "t",
            tuples: vec![],
            queries: 17,
            resolved: 3,
            overflowed: 14,
            pruned: 0,
            metrics: CrawlMetrics::default(),
            progress: vec![],
        };
        assert_eq!(r.queries_per_tuple(), 0.0);
        assert!((r.resolution_rate() - 3.0 / 17.0).abs() < 1e-12);
    }

    #[test]
    fn progress_deviation_diagonal_is_zero() {
        let pts = (0..=10)
            .map(|i| ProgressPoint {
                queries: i,
                tuples: i,
            })
            .collect();
        assert!(report(pts).progress_deviation() < 1e-12);
    }

    #[test]
    fn progress_deviation_detects_backloading() {
        // All tuples arrive at the very end: deviation near 1.
        let pts = vec![
            ProgressPoint {
                queries: 1,
                tuples: 0,
            },
            ProgressPoint {
                queries: 99,
                tuples: 0,
            },
            ProgressPoint {
                queries: 100,
                tuples: 100,
            },
        ];
        assert!(report(pts).progress_deviation() > 0.9);
    }

    #[test]
    fn error_partial_access() {
        let r = report(vec![]);
        let e = CrawlError::Db {
            error: DbError::BudgetExhausted {
                issued: 5,
                limit: 5,
            },
            partial: Box::new(r),
        };
        assert_eq!(e.partial().tuples.len(), 10);
        assert!(e.to_string().contains("aborted after 5 queries"));
        assert_eq!(e.into_partial().queries, 5);
    }

    #[test]
    fn unsolvable_display() {
        let e = CrawlError::Unsolvable {
            witness: Query::any(1),
            partial: Box::new(report(vec![])),
        };
        assert!(e.to_string().contains("not crawlable"));
    }

    #[test]
    fn stopped_carries_partial() {
        let e = CrawlError::Stopped {
            partial: Box::new(report(vec![])),
        };
        assert_eq!(e.partial().tuples.len(), 10);
        assert!(e.to_string().contains("stopped by observer"));
        assert_eq!(e.into_partial().queries, 5);
    }
}
