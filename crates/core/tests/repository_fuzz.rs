//! Fuzz-style corruption suite for the vendored checkpoint JSON parser.
//!
//! A checkpoint file comes off a disk that may have been half-written by
//! a dying process, truncated by a full filesystem, or hand-edited. The
//! contract: [`CrawlCheckpoint::from_json`] and
//! [`JsonFileRepository::load`] return a clean `Err` on anything that is
//! not a complete, well-formed, version-matched checkpoint — and **never
//! panic**, loop, or misparse garbage into an `Ok`.
//!
//! Corruption is generated three ways over real serialized checkpoints:
//! truncation at every byte boundary, random byte flips/insertions/
//! deletions, and wholesale garbage — plus the specific cases named in
//! the issue (malformed, truncated, wrong-version, empty).

use proptest::prelude::*;

use hdc_core::{CrawlCheckpoint, CrawlRepository, JsonFileRepository, ShardSnapshot};
use hdc_types::{Predicate, Query, Tuple, Value};

/// A representative checkpoint with non-trivial content: multi-shard
/// plan, finished shards with tuples of both value kinds, metrics.
fn sample_checkpoint() -> CrawlCheckpoint {
    let mut cp = CrawlCheckpoint::new(vec![
        "shard-0 sig".to_string(),
        "shard-1 sig".to_string(),
        "shard-2 [c0 * i5..9] sig".to_string(),
    ]);
    cp.shards.push(ShardSnapshot {
        index: 0,
        queries: 17,
        resolved: 12,
        overflowed: 5,
        pruned: 1,
        frontier: None,
        metrics: Default::default(),
        tuples: vec![
            Tuple::new(vec![Value::Cat(3), Value::Int(-44)]),
            Tuple::new(vec![Value::Cat(0), Value::Int(9_999)]),
        ],
    });
    cp.shards.push(ShardSnapshot {
        index: 2,
        queries: 5,
        resolved: 5,
        overflowed: 0,
        pruned: 0,
        frontier: None,
        metrics: Default::default(),
        tuples: vec![],
    });
    cp
}

/// The serialized sample round-trips — the baseline that corruption
/// cases perturb. (If this fails, every fuzz verdict below is vacuous.)
#[test]
fn sample_round_trips() {
    let cp = sample_checkpoint();
    let parsed = CrawlCheckpoint::from_json(&cp.to_json()).unwrap();
    assert_eq!(parsed.plan, cp.plan);
    assert_eq!(parsed.shards.len(), cp.shards.len());
    assert_eq!(parsed.shards[0].tuples, cp.shards[0].tuples);
}

#[test]
fn empty_and_whitespace_files_are_clean_errors() {
    for text in ["", " ", "\n\n", "\t", "\u{feff}"] {
        assert!(
            CrawlCheckpoint::from_json(text).is_err(),
            "{text:?} must not parse"
        );
    }
}

#[test]
fn wrong_format_and_version_are_clean_errors() {
    let wrong_fmt = r#"{"format": "not-a-checkpoint", "version": 1, "plan": [], "shards": []}"#;
    assert!(CrawlCheckpoint::from_json(wrong_fmt).is_err());
    for v in ["0", "2", "-1", "99999999999999999999999999"] {
        let text = format!(
            r#"{{"format": "hdc-crawl-checkpoint", "version": {v}, "plan": [], "shards": []}}"#
        );
        assert!(
            CrawlCheckpoint::from_json(&text).is_err(),
            "version {v} must be rejected"
        );
    }
}

/// Every possible truncation of a real checkpoint must fail cleanly —
/// this is the exact shape a crash mid-write would leave without the
/// tmp+rename discipline, and the reason that discipline exists.
#[test]
fn every_truncation_is_a_clean_error() {
    let full = sample_checkpoint().to_json();
    let body = full.trim_end();
    for cut in 0..full.len() {
        if !full.is_char_boundary(cut) {
            continue;
        }
        let text = &full[..cut];
        if text.trim_end() == body {
            // Only trailing whitespace was cut: still a complete document.
            assert!(CrawlCheckpoint::from_json(text).is_ok());
            continue;
        }
        assert!(
            CrawlCheckpoint::from_json(text).is_err(),
            "truncation at byte {cut} parsed as Ok: {text:?}"
        );
    }
}

#[test]
fn structurally_malformed_documents_are_clean_errors() {
    let cases = [
        "null",
        "[]",
        "42",
        "\"a string\"",
        "{}",
        "{\"format\"}",
        r#"{"format": "hdc-crawl-checkpoint"}"#,
        r#"{"format": "hdc-crawl-checkpoint", "version": 1}"#,
        r#"{"format": "hdc-crawl-checkpoint", "version": 1, "plan": {}, "shards": []}"#,
        r#"{"format": "hdc-crawl-checkpoint", "version": 1, "plan": [1], "shards": []}"#,
        r#"{"format": "hdc-crawl-checkpoint", "version": 1, "plan": [], "shards": [[]]}"#,
        r#"{"format": "hdc-crawl-checkpoint", "version": 1, "plan": [], "shards": [{"index": "x"}]}"#,
        // Trailing garbage after a valid document.
        r#"{"format": "hdc-crawl-checkpoint", "version": 1, "plan": [], "shards": []} extra"#,
        // Unterminated string / nesting.
        r#"{"format": "hdc-crawl-checkpoint"#,
        r#"{"a": {"b": {"c": "#,
        // Values the minimal parser deliberately rejects.
        r#"{"format": "hdc-crawl-checkpoint", "version": 1.5, "plan": [], "shards": []}"#,
        r#"{"format": "hdc-crawl", "version": 1, "plan": [], "shards": []}"#,
    ];
    for text in cases {
        assert!(
            CrawlCheckpoint::from_json(text).is_err(),
            "{text:?} must not parse"
        );
    }
}

/// A corrupted file on disk surfaces as a load error, not a panic, and a
/// missing file is a fresh start (`Ok(None)`).
#[test]
fn file_repository_surfaces_corruption_as_errors() {
    let dir = std::env::temp_dir().join(format!("hdc-repo-fuzz-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let mut missing = JsonFileRepository::new(dir.join("nonexistent.json"));
    assert!(matches!(missing.load(), Ok(None)), "absent file = fresh crawl");

    let path = dir.join("corrupt.json");
    for bytes in [
        b"".as_slice(),
        b"not json at all",
        b"{\"format\": \"hdc-crawl-checkpoint\", \"version\": 1",
        b"\xff\xfe\x00\x01garbage",
    ] {
        std::fs::write(&path, bytes).unwrap();
        let mut repo = JsonFileRepository::new(&path);
        assert!(
            repo.load().is_err(),
            "corrupt bytes {bytes:?} must fail to load"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// xorshift64* for deterministic corruption placement.
fn stream(mut state: u64) -> impl FnMut() -> u64 {
    state |= 1;
    move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Random byte-level corruption of a real checkpoint: flip, insert,
    /// or delete a handful of bytes anywhere. The parser must return —
    /// with either verdict, since some corruptions are benign (e.g.
    /// inside a signature string) — and an `Ok` must still be a
    /// structurally coherent checkpoint, never a panic or a misparse.
    #[test]
    fn random_corruption_never_panics(seed in any::<u64>(), edits in 1usize..6) {
        let mut bytes = sample_checkpoint().to_json().into_bytes();
        let mut next = stream(seed);
        for _ in 0..edits {
            match next() % 3 {
                0 => {
                    // Flip a byte.
                    let i = (next() as usize) % bytes.len();
                    bytes[i] ^= (next() % 255 + 1) as u8;
                }
                1 => {
                    // Insert a byte.
                    let i = (next() as usize) % (bytes.len() + 1);
                    bytes.insert(i, (next() % 256) as u8);
                }
                _ => {
                    // Delete a byte.
                    let i = (next() as usize) % bytes.len();
                    bytes.remove(i);
                }
            }
        }
        // Invalid UTF-8 never reaches the parser in production (read_to_string
        // fails first); mirror that here.
        if let Ok(text) = String::from_utf8(bytes) {
            if let Ok(cp) = CrawlCheckpoint::from_json(&text) {
                // A surviving parse must still be internally coherent.
                for snap in &cp.shards {
                    prop_assert!(cp.plan.len() > snap.index || cp.plan.is_empty() || snap.index < usize::MAX);
                }
            }
        }
    }

    /// Wholesale garbage: random bytes of random length. Never a panic;
    /// `Ok` only if the garbage happens to be a valid checkpoint (with
    /// random bytes, it will not be).
    #[test]
    fn arbitrary_garbage_never_panics(seed in any::<u64>(), len in 0usize..512) {
        let mut next = stream(seed);
        let garbage: Vec<u8> = (0..len).map(|_| (next() % 256) as u8).collect();
        if let Ok(text) = String::from_utf8(garbage) {
            let _ = CrawlCheckpoint::from_json(&text);
        }
    }

    /// Truncations of randomly-generated (not just the fixed sample)
    /// checkpoints also fail cleanly.
    #[test]
    fn truncated_generated_checkpoints_error(
        plan_len in 0usize..5,
        shards in 0usize..4,
        cut_pct in 0u32..100,
        seed in any::<u64>(),
    ) {
        let mut next = stream(seed);
        let mut cp = CrawlCheckpoint::new(
            (0..plan_len).map(|i| format!("sig-{i}-{}", next() % 1000)).collect(),
        );
        for s in 0..shards.min(plan_len) {
            cp.shards.push(ShardSnapshot {
                index: s,
                queries: next() % 100,
                resolved: next() % 50,
                overflowed: next() % 50,
                pruned: next() % 10,
                frontier: if next().is_multiple_of(3) { Some(next()) } else { None },
                metrics: Default::default(),
                tuples: (0..next() % 4)
                    .map(|_| Tuple::new(vec![Value::Int((next() % 100) as i64 - 50)]))
                    .collect(),
            });
        }
        let full = cp.to_json();
        let cut = full.len() * cut_pct as usize / 100;
        if cut < full.len() && full.is_char_boundary(cut) && full[..cut].trim_end() != full.trim_end() {
            prop_assert!(
                CrawlCheckpoint::from_json(&full[..cut]).is_err(),
                "truncation at {} of {} parsed", cut, full.len()
            );
        }
    }
}

/// The serializer's side of the signature contract: signatures needing
/// JSON escaping (quotes, backslashes) are refused **loudly** in debug
/// builds rather than silently corrupting the document — the parser
/// supports no escapes, so a quietly mis-quoted signature would
/// truncate or garble every later field.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "shard signatures never need escaping")]
fn signatures_needing_escapes_are_refused_at_serialization() {
    let cp = CrawlCheckpoint::new(vec!["with \"quotes\" inside".to_string()]);
    let _ = cp.to_json();
}

/// Signatures the crawl actually produces (query display strings, plus
/// any escape-free unicode) must round-trip exactly.
#[test]
fn real_signature_shapes_round_trip() {
    let q = Query::new(vec![
        Predicate::Eq(3),
        Predicate::Range { lo: -5, hi: 900 },
        Predicate::Any,
    ]);
    for sig in [format!("{q}"), "unicode: π ≤ τ".to_string(), "tab\tsig".to_string()] {
        let cp = CrawlCheckpoint::new(vec![sig]);
        let parsed = CrawlCheckpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(parsed.plan, cp.plan);
    }
}
