//! Differential suite for the fault-tolerant crawl runtime — the PR's
//! headline theorems, checked bit for bit against the deterministic
//! adversary server:
//!
//! 1. **Faults + retries change nothing but the retry count.** A crawl
//!    through a seeded [`FaultyDb`] with a generous [`RetryPolicy`]
//!    extracts the *same bag* with the *same charged-query cost* as the
//!    fault-free crawl, and the only overhead is exactly the injected
//!    faults (`transient_retries == faults_injected` — failed attempts
//!    never reach, or charge, the inner database).
//! 2. **Checkpoint / kill / resume is exact.** Interrupting a
//!    checkpointed crawl (budget exhaustion models the kill) and
//!    resuming from the repository yields the same bag and the same
//!    total accounting as the uninterrupted run, with the resumed
//!    process re-issuing only the unfinished shards — solo (sequential
//!    plan) and sharded (work-stealing pool) alike.
//!
//! Plus the supporting semantics: cancellation stops before spending,
//! permanent identity death salvages completed work, budget exhaustion
//! is never retried, and a plan mismatch refuses to resume.

use proptest::prelude::*;
use proptest::Strategy as PropStrategy;

use hdc_core::{
    CancelToken, Crawl, CrawlError, CrawlObserver, Flow, MemoryRepository, RetryPolicy, Strategy,
};
use hdc_server::{HiddenDbServer, ServerConfig};
use hdc_types::{
    AttrKind, DbError, FaultConfig, FaultyDb, HiddenDatabase, Query, QueryOutcome, Schema, Tuple,
    TupleBag, Value,
};

/// A generated test instance: schema + tuples + k (same generator family
/// as the builder differential suite).
#[derive(Debug, Clone)]
struct Instance {
    schema: Schema,
    tuples: Vec<Tuple>,
    k: usize,
}

impl Instance {
    fn solvable(&self) -> bool {
        TupleBag::from_tuples(self.tuples.iter().cloned()).max_multiplicity() <= self.k
    }

    fn server(&self, seed: u64) -> HiddenDbServer {
        HiddenDbServer::new(
            self.schema.clone(),
            self.tuples.clone(),
            ServerConfig { k: self.k, seed },
        )
        .unwrap()
    }
}

fn instance_strategy() -> impl PropStrategy<Value = Instance> {
    (
        proptest::collection::vec((any::<bool>(), 2u32..7, 1i64..25), 1..4),
        2usize..10,
        0usize..120,
        any::<u64>(),
    )
        .prop_map(|(attrs, k, n, seed)| {
            let mut builder = Schema::builder();
            let mut kinds = Vec::new();
            for (i, &(is_cat, u, w)) in attrs.iter().enumerate() {
                if is_cat {
                    builder = builder.categorical(format!("c{i}"), u);
                    kinds.push(AttrKind::Categorical { size: u });
                } else {
                    builder = builder.numeric(format!("n{i}"), -w, w);
                    kinds.push(AttrKind::Numeric { min: -w, max: w });
                }
            }
            let schema = builder.build().unwrap();
            let mut x = seed | 1;
            let mut next = move || {
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                x.wrapping_mul(0x2545_f491_4f6c_dd1d)
            };
            let tuples: Vec<Tuple> = (0..n)
                .map(|_| {
                    Tuple::new(
                        kinds
                            .iter()
                            .map(|&kind| match kind {
                                AttrKind::Categorical { size } => {
                                    Value::Cat((next() % u64::from(size)) as u32)
                                }
                                AttrKind::Numeric { min, max } => {
                                    let span = (max - min + 1) as u64;
                                    Value::Int(min + (next() % span) as i64)
                                }
                            })
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            Instance { schema, tuples, k }
        })
}

/// A retry policy generous enough that no fault schedule in this suite
/// can exhaust it (rate ≤ 0.4, burst ≤ 2 ⇒ P(50 consecutive faults) ≈ 0).
fn generous_retry() -> RetryPolicy {
    RetryPolicy::new(50).no_sleep()
}

fn bag(tuples: &[Tuple]) -> TupleBag {
    TupleBag::from_tuples(tuples.iter().cloned())
}

// ---------------------------------------------------------------------
// Theorem 1: faults + retries ≡ fault-free, up to the retried attempts.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Solo: `Crawl::builder().retry(...)` over a `FaultyDb` extracts the
    /// same bag at the same charged cost as the fault-free crawl, and
    /// the retry metric equals the injected-fault count exactly.
    #[test]
    fn solo_faulty_retried_crawl_equals_fault_free(
        inst in instance_strategy(),
        fault_seed in any::<u64>(),
        rate_pct in 0u32..=40,
        burst in 1u32..3,
    ) {
        prop_assume!(inst.solvable());
        let clean = Crawl::builder()
            .strategy(Strategy::Auto)
            .run(&mut inst.server(5))
            .unwrap();

        let mut faulty = FaultyDb::new(
            inst.server(5),
            FaultConfig {
                seed: fault_seed,
                transient_rate: f64::from(rate_pct) / 100.0,
                burst,
                fail_after: None,
            },
        );
        let report = Crawl::builder()
            .strategy(Strategy::Auto)
            .retry(generous_retry())
            .run(&mut faulty)
            .unwrap();

        prop_assert!(bag(&report.tuples).multiset_eq(&bag(&clean.tuples)),
            "faults + retries must not change the extracted bag");
        prop_assert_eq!(report.queries, clean.queries,
            "failed attempts are never charged: same cost as fault-free");
        prop_assert_eq!(report.metrics.transient_retries, faulty.faults_injected(),
            "overhead is exactly the injected faults, no more, no less");
        prop_assert_eq!(faulty.queries_issued(), clean.queries);
    }

    /// Sharded: per-identity fault schedules, retried inside each shard
    /// session — merged bag and merged charged cost match the fault-free
    /// sharded crawl.
    #[test]
    fn sharded_faulty_retried_crawl_equals_fault_free(
        inst in instance_strategy(),
        fault_seed in any::<u64>(),
        rate_pct in 0u32..=30,
    ) {
        prop_assume!(inst.solvable());
        let sharded_strategy = Strategy::Auto.resolve(&inst.schema);
        prop_assume!(sharded_strategy.supports_sharded(&inst.schema));

        let clean = Crawl::builder()
            .sessions(2)
            .oversubscribe(3)
            .run_sharded(|_s| inst.server(5))
            .unwrap();

        let faulty = Crawl::builder()
            .sessions(2)
            .oversubscribe(3)
            .retry(generous_retry())
            .run_sharded(|s| {
                FaultyDb::new(
                    inst.server(5),
                    FaultConfig {
                        seed: fault_seed ^ s as u64,
                        transient_rate: f64::from(rate_pct) / 100.0,
                        burst: 1,
                        fail_after: None,
                    },
                )
            })
            .unwrap();

        prop_assert!(
            bag(&faulty.merged.tuples).multiset_eq(&bag(&clean.merged.tuples)),
            "sharded faults + retries must not change the merged bag"
        );
        prop_assert_eq!(faulty.merged.queries, clean.merged.queries);
    }
}

// ---------------------------------------------------------------------
// Theorem 2: checkpoint / kill / resume ≡ uninterrupted.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Solo sequential plan: interrupt a checkpointed crawl with a tight
    /// budget (the kill), resume from the repository with a fresh
    /// connection — bag and total accounting match the uninterrupted
    /// checkpointed run, and the resume re-issues only what the
    /// checkpoint does not already hold.
    #[test]
    fn solo_checkpoint_kill_resume_is_exact(
        inst in instance_strategy(),
        budget_frac in 1u64..100,
    ) {
        prop_assume!(inst.solvable());
        prop_assume!(Strategy::Auto.resolve(&inst.schema).supports_sharded(&inst.schema));

        let mut full_repo = MemoryRepository::default();
        let uninterrupted = Crawl::builder()
            .oversubscribe(4)
            .repository(&mut full_repo)
            .run(&mut inst.server(5))
            .unwrap();

        // Kill: a budget strictly below the full cost aborts mid-plan.
        let budget = 1 + uninterrupted.queries * budget_frac / 100;
        prop_assume!(budget < uninterrupted.queries);
        let mut repo = MemoryRepository::default();
        let interrupted = Crawl::builder()
            .oversubscribe(4)
            .budget(budget)
            .repository(&mut repo)
            .run(&mut inst.server(5));
        prop_assert!(interrupted.is_err(), "budget below full cost must fail");

        let checkpointed: u64 = repo
            .saved()
            .map(|cp| cp.shards.iter().map(|s| s.queries).sum())
            .unwrap_or(0);
        prop_assert!(checkpointed < uninterrupted.queries);

        // Resume: fresh connection, no budget, same repository.
        let mut server = inst.server(5);
        let resumed = Crawl::builder()
            .oversubscribe(4)
            .repository(&mut repo)
            .run(&mut server)
            .unwrap();

        prop_assert!(bag(&resumed.tuples).multiset_eq(&bag(&uninterrupted.tuples)),
            "resume must reconstruct the uninterrupted bag exactly");
        prop_assert_eq!(resumed.queries, uninterrupted.queries,
            "restored shards keep their recorded cost; totals match");
        prop_assert_eq!(server.queries_issued(), uninterrupted.queries - checkpointed,
            "the resumed process pays only for shards the checkpoint lacks");
    }

    /// Sharded pool: same kill-and-resume contract across two identities
    /// with per-identity budgets.
    #[test]
    fn sharded_checkpoint_kill_resume_is_exact(
        inst in instance_strategy(),
        budget_frac in 1u64..80,
    ) {
        prop_assume!(inst.solvable());
        prop_assume!(Strategy::Auto.resolve(&inst.schema).supports_sharded(&inst.schema));

        let uninterrupted = Crawl::builder()
            .sessions(2)
            .oversubscribe(3)
            .run_sharded(|_s| inst.server(5))
            .unwrap();

        let budget = 1 + uninterrupted.merged.queries * budget_frac / 100 / 2;
        prop_assume!(budget * 2 < uninterrupted.merged.queries);
        let mut repo = MemoryRepository::default();
        let interrupted = Crawl::builder()
            .sessions(2)
            .oversubscribe(3)
            .budget(budget)
            .repository(&mut repo)
            .run_sharded(|_s| inst.server(5));
        prop_assert!(interrupted.is_err(),
            "per-identity budgets below the full cost must fail");
        let checkpointed = repo.saved().map(|cp| cp.shards.len()).unwrap_or(0);

        let resumed = Crawl::builder()
            .sessions(2)
            .oversubscribe(3)
            .repository(&mut repo)
            .run_sharded(|_s| inst.server(5))
            .unwrap();

        prop_assert!(
            bag(&resumed.merged.tuples).multiset_eq(&bag(&uninterrupted.merged.tuples)),
            "sharded resume must reconstruct the uninterrupted merged bag"
        );
        prop_assert_eq!(resumed.merged.queries, uninterrupted.merged.queries);
        let restored = resumed.shards.iter().filter(|s| s.restored).count();
        prop_assert_eq!(restored, checkpointed,
            "every checkpointed shard is replayed, none re-crawled");
    }

    /// Observer-initiated early stop (the kill is a `Flow::Stop`
    /// streamed out of a pool worker, not a budget): the checkpointed
    /// run halts with `Stopped`, retains its checkpoint, and a plain
    /// resume against the same repository completes with the
    /// uninterrupted bag and total cost. This is the contract behind
    /// `hdc crawl --target` on sharded and checkpointed runs.
    #[test]
    fn early_stop_checkpoint_resume_completes_exactly(
        inst in instance_strategy(),
        stop_frac in 1u64..90,
    ) {
        prop_assume!(inst.solvable());
        prop_assume!(Strategy::Auto.resolve(&inst.schema).supports_sharded(&inst.schema));

        let uninterrupted = Crawl::builder()
            .sessions(2)
            .oversubscribe(3)
            .run_sharded(|_s| inst.server(5))
            .unwrap();

        struct StopAfter {
            limit: u64,
            seen: u64,
        }
        impl CrawlObserver for StopAfter {
            fn on_query(&mut self, _q: &Query, _out: &QueryOutcome) -> Flow {
                self.seen += 1;
                if self.seen >= self.limit { Flow::Stop } else { Flow::Continue }
            }
        }

        let stop_after = 1 + uninterrupted.merged.queries * stop_frac / 100;
        prop_assume!(stop_after < uninterrupted.merged.queries);
        let mut stopper = StopAfter { limit: stop_after, seen: 0 };
        let mut repo = MemoryRepository::default();
        let interrupted = Crawl::builder()
            .sessions(2)
            .oversubscribe(3)
            .observer(&mut stopper)
            .repository(&mut repo)
            .run_sharded(|_s| inst.server(5));
        match interrupted {
            // The stop latched only after the crawl's final query — no
            // interruption happened, nothing to resume.
            Ok(_) => return Ok(()),
            Err(CrawlError::Stopped { .. }) => {}
            Err(e) => {
                prop_assert!(false, "early stop surfaced as {e}, not Stopped");
            }
        }
        let checkpointed = repo.saved().map(|cp| cp.shards.len()).unwrap_or(0);

        let resumed = Crawl::builder()
            .sessions(2)
            .oversubscribe(3)
            .repository(&mut repo)
            .run_sharded(|_s| inst.server(5))
            .unwrap();

        prop_assert!(
            bag(&resumed.merged.tuples).multiset_eq(&bag(&uninterrupted.merged.tuples)),
            "resume after an early stop must reconstruct the uninterrupted bag"
        );
        prop_assert_eq!(resumed.merged.queries, uninterrupted.merged.queries,
            "resume after an early stop must converge on the uninterrupted cost");
        let restored = resumed.shards.iter().filter(|s| s.restored).count();
        prop_assert_eq!(restored, checkpointed,
            "every shard checkpointed before the stop is replayed, none re-crawled");
    }
}

// ---------------------------------------------------------------------
// Supporting semantics (deterministic tests).
// ---------------------------------------------------------------------

fn yahoo_like() -> Instance {
    // A mixed schema with enough rows to make multi-shard plans and
    // mid-crawl interruptions meaningful.
    let schema = Schema::builder()
        .categorical("make", 5)
        .numeric("price", 0, 999)
        .build()
        .unwrap();
    let mut x = 0x9e37u64;
    let mut next = move || {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    let tuples: Vec<Tuple> = (0..400)
        .map(|_| {
            Tuple::new(vec![
                Value::Cat((next() % 5) as u32),
                Value::Int((next() % 1000) as i64),
            ])
        })
        .collect();
    Instance {
        schema,
        tuples,
        k: 10,
    }
}

/// Cancelling the token before the crawl starts: nothing is spent, the
/// partial is empty, and the error is `Stopped` — solo and sharded.
#[test]
fn pre_cancelled_token_spends_nothing() {
    let inst = yahoo_like();
    let token = CancelToken::new();
    token.cancel();

    let mut server = inst.server(5);
    let err = Crawl::builder().cancel(&token).run(&mut server).unwrap_err();
    let CrawlError::Stopped { partial } = err else {
        panic!("expected Stopped, got {err:?}");
    };
    assert_eq!(partial.queries, 0);
    assert_eq!(server.queries_issued(), 0);

    let err = Crawl::builder()
        .sessions(2)
        .oversubscribe(3)
        .cancel(&token)
        .run_sharded(|_s| inst.server(5))
        .unwrap_err();
    let CrawlError::Stopped { partial } = err else {
        panic!("expected Stopped, got {err:?}");
    };
    assert_eq!(partial.queries, 0, "no shard ran, nothing was charged");
    assert!(partial.tuples.is_empty());
}

/// Mid-crawl cancellation from an observer callback: the session checks
/// the token before its next query round, keeps everything already
/// charged, and surfaces `Stopped`.
#[test]
fn mid_crawl_cancellation_keeps_paid_work() {
    struct CancelAfter<'t> {
        token: &'t CancelToken,
        seen: u64,
    }
    impl CrawlObserver for CancelAfter<'_> {
        fn on_query(&mut self, _q: &Query, _out: &QueryOutcome) -> Flow {
            self.seen += 1;
            if self.seen == 5 {
                // Cancel *via the token*, not via Flow::Stop — this is
                // the path an external thread or signal handler uses.
                self.token.cancel();
            }
            Flow::Continue
        }
    }

    let inst = yahoo_like();
    let token = CancelToken::new();
    let mut observer = CancelAfter {
        token: &token,
        seen: 0,
    };
    let mut server = inst.server(5);
    let err = Crawl::builder()
        .cancel(&token)
        .observer(&mut observer)
        .run(&mut server)
        .unwrap_err();
    let CrawlError::Stopped { partial } = err else {
        panic!("expected Stopped, got {err:?}");
    };
    assert!(partial.queries >= 5, "charged work is kept");
    assert_eq!(partial.queries, server.queries_issued());
    assert!(
        (partial.tuples.len() as u64) < inst.tuples.len() as u64,
        "the crawl stopped early"
    );
}

/// Permanent identity death mid-crawl (the `fail_after` fuse): the dead
/// identity's shard fails permanently — no retry can help — but every
/// completed shard's work is salvaged into the partial report.
#[test]
fn permanent_death_is_not_retried_and_salvage_survives() {
    let inst = yahoo_like();
    let err = Crawl::builder()
        .sessions(2)
        .oversubscribe(4)
        .retry(generous_retry())
        .run_sharded(|s| {
            FaultyDb::new(
                inst.server(5),
                FaultConfig {
                    // Identity 0 dies after 30 queries; identity 1 is clean.
                    fail_after: (s == 0).then_some(30),
                    ..FaultConfig::default()
                },
            )
        })
        .unwrap_err();
    let CrawlError::Db { error, partial } = err else {
        panic!("expected a database failure, got {err:?}");
    };
    assert!(!error.is_transient(), "identity death is permanent");
    assert!(
        !partial.tuples.is_empty(),
        "the surviving identity's completed shards are salvaged"
    );
    assert!(partial.queries > 0);
}

/// Budget exhaustion is permanent: a generous retry policy never
/// re-spends against an exhausted quota, so the charged count equals the
/// budget exactly even under injected transient faults.
#[test]
fn budget_exhaustion_wins_against_retry() {
    let inst = yahoo_like();
    let mut faulty = FaultyDb::new(
        inst.server(5),
        FaultConfig {
            seed: 11,
            transient_rate: 0.2,
            ..FaultConfig::default()
        },
    );
    let err = Crawl::builder()
        .budget(25)
        .retry(generous_retry())
        .run(&mut faulty)
        .unwrap_err();
    let CrawlError::Db { error, partial } = err else {
        panic!("expected a budget failure, got {err:?}");
    };
    assert!(
        matches!(error, DbError::BudgetExhausted { limit: 25, .. }),
        "got {error:?}"
    );
    assert_eq!(partial.queries, 25, "retries never consume quota");
    assert_eq!(faulty.queries_issued(), 25);
}

/// A checkpoint taken under one plan refuses to resume under another —
/// silently merging mismatched shards would corrupt the bag. The refusal
/// is a *typed, recoverable error* (a worker joining a fleet with a
/// stale plan must retire cleanly, not abort the process), and it
/// refuses before charging a single query.
#[test]
fn plan_mismatch_refuses_to_resume() {
    let inst = yahoo_like();
    let mut repo = MemoryRepository::default();
    Crawl::builder()
        .oversubscribe(2)
        .repository(&mut repo)
        .run(&mut inst.server(5))
        .unwrap();
    // Different oversubscription ⇒ different plan ⇒ different signatures.
    let mut server = inst.server(5);
    let err = Crawl::builder()
        .oversubscribe(8)
        .repository(&mut repo)
        .run(&mut server)
        .unwrap_err();
    let CrawlError::Db { error, partial } = err else {
        panic!("expected a typed mismatch error, got {err:?}");
    };
    assert!(
        error.to_string().contains("plan mismatch"),
        "got {error:?}"
    );
    assert_eq!(partial.queries, 0, "refused before spending");
    assert_eq!(server.queries_issued(), 0);
}

/// Re-running a *completed* checkpointed crawl replays everything from
/// the repository: zero fresh queries, identical bag.
#[test]
fn completed_checkpoint_replays_for_free() {
    let inst = yahoo_like();
    let mut repo = MemoryRepository::default();
    let first = Crawl::builder()
        .oversubscribe(4)
        .repository(&mut repo)
        .run(&mut inst.server(5))
        .unwrap();

    let mut server = inst.server(5);
    let replay = Crawl::builder()
        .oversubscribe(4)
        .repository(&mut repo)
        .run(&mut server)
        .unwrap();
    assert_eq!(server.queries_issued(), 0, "everything came from the checkpoint");
    assert!(bag(&replay.tuples).multiset_eq(&bag(&first.tuples)));
    assert_eq!(replay.queries, first.queries);
}

/// Sharded identity health: transient strikes retire a flaky identity
/// only after the configured number of *consecutive* transient shard
/// failures, and a retry policy that rides out the faults keeps the
/// crawl whole (Ok, full bag) despite a double-digit fault rate.
#[test]
fn sharded_retry_rides_out_transient_faults() {
    let inst = yahoo_like();
    let clean = Crawl::builder()
        .sessions(2)
        .oversubscribe(3)
        .run_sharded(|_s| inst.server(5))
        .unwrap();
    let faulty = Crawl::builder()
        .sessions(2)
        .oversubscribe(3)
        .retry(generous_retry())
        .transient_strikes(3)
        .run_sharded(|s| {
            FaultyDb::new(
                inst.server(5),
                FaultConfig {
                    seed: 17 ^ s as u64,
                    transient_rate: 0.15,
                    ..FaultConfig::default()
                },
            )
        })
        .unwrap();
    assert!(bag(&faulty.merged.tuples).multiset_eq(&bag(&clean.merged.tuples)));
    assert_eq!(faulty.merged.queries, clean.merged.queries);
    assert!(
        faulty.merged.metrics.transient_retries > 0,
        "a 15% fault rate over hundreds of queries must retry at least once"
    );
}
