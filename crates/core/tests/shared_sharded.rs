//! Differential suite for sharded crawls over a **shared** store.
//!
//! PR 7's serving refactor lets a fleet of crawl identities share one
//! immutable column store (`SharedServer::client()` as the identity
//! factory) instead of cloning the whole database per identity. The
//! claims under test, all bit-level:
//!
//! 1. **Share ≡ clone.** A sharded crawl whose identities are clients of
//!    one shared store extracts the same bag at the same charged cost —
//!    and the same *per-shard* cost — as the clone-per-identity path.
//! 2. **Budgets stay per-client.** Per-identity quotas behave
//!    identically in both worlds, including the exhaustion (salvage)
//!    path.
//! 3. **Faults stay per-client.** `FaultyDb`-wrapped shared clients with
//!    retry are indistinguishable from fault-free — concurrently, on the
//!    real work-stealing pool (extends `faults.rs` theorem 1 to the
//!    shared path).

use proptest::prelude::*;
use proptest::Strategy as PropStrategy;

use hdc_core::{Crawl, CrawlError, RetryPolicy, Strategy};
use hdc_server::{HiddenDbServer, ServerConfig, SharedServer};
use hdc_types::{
    AttrKind, FaultConfig, FaultyDb, Schema, Tuple, TupleBag, Value,
};

#[derive(Debug, Clone)]
struct Instance {
    schema: Schema,
    tuples: Vec<Tuple>,
    k: usize,
}

impl Instance {
    fn solvable(&self) -> bool {
        TupleBag::from_tuples(self.tuples.iter().cloned()).max_multiplicity() <= self.k
    }

    fn server(&self, seed: u64) -> HiddenDbServer {
        HiddenDbServer::new(
            self.schema.clone(),
            self.tuples.clone(),
            ServerConfig { k: self.k, seed },
        )
        .unwrap()
    }

    fn shared(&self, seed: u64) -> SharedServer {
        SharedServer::new(
            self.schema.clone(),
            self.tuples.clone(),
            ServerConfig { k: self.k, seed },
        )
        .unwrap()
    }
}

fn instance_strategy() -> impl PropStrategy<Value = Instance> {
    (
        proptest::collection::vec((any::<bool>(), 2u32..7, 1i64..25), 1..4),
        2usize..10,
        0usize..120,
        any::<u64>(),
    )
        .prop_map(|(attrs, k, n, seed)| {
            let mut builder = Schema::builder();
            let mut kinds = Vec::new();
            for (i, &(is_cat, u, w)) in attrs.iter().enumerate() {
                if is_cat {
                    builder = builder.categorical(format!("c{i}"), u);
                    kinds.push(AttrKind::Categorical { size: u });
                } else {
                    builder = builder.numeric(format!("n{i}"), -w, w);
                    kinds.push(AttrKind::Numeric { min: -w, max: w });
                }
            }
            let schema = builder.build().unwrap();
            let mut x = seed | 1;
            let mut next = move || {
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                x.wrapping_mul(0x2545_f491_4f6c_dd1d)
            };
            let tuples: Vec<Tuple> = (0..n)
                .map(|_| {
                    Tuple::new(
                        kinds
                            .iter()
                            .map(|&kind| match kind {
                                AttrKind::Categorical { size } => {
                                    Value::Cat((next() % u64::from(size)) as u32)
                                }
                                AttrKind::Numeric { min, max } => {
                                    let span = (max - min + 1) as u64;
                                    Value::Int(min + (next() % span) as i64)
                                }
                            })
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            Instance { schema, tuples, k }
        })
}

fn bag(tuples: &[Tuple]) -> TupleBag {
    TupleBag::from_tuples(tuples.iter().cloned())
}

fn sharded_supported(inst: &Instance) -> bool {
    Strategy::Auto
        .resolve(&inst.schema)
        .supports_sharded(&inst.schema)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Theorem: sharded crawls over one shared store are bag- and
    /// cost-identical to the clone-per-identity path — down to each
    /// individual shard's charged queries and extracted tuple count
    /// (shards are reported in plan order, so they align 1:1).
    #[test]
    fn shared_store_sharded_crawl_equals_clone_per_identity(
        inst in instance_strategy(),
        sessions in 1usize..5,
        oversubscribe in 1usize..4,
    ) {
        prop_assume!(inst.solvable());
        prop_assume!(sharded_supported(&inst));

        let cloned = Crawl::builder()
            .sessions(sessions)
            .oversubscribe(oversubscribe)
            .run_sharded(|_s| inst.server(5))
            .unwrap();

        let shared = inst.shared(5);
        let got = Crawl::builder()
            .sessions(sessions)
            .oversubscribe(oversubscribe)
            .run_sharded(|_s| shared.client())
            .unwrap();

        prop_assert!(
            bag(&got.merged.tuples).multiset_eq(&bag(&cloned.merged.tuples)),
            "shared-store sharded crawl changed the extracted bag"
        );
        prop_assert_eq!(got.merged.queries, cloned.merged.queries,
            "shared-store sharded crawl changed the charged cost");
        prop_assert_eq!(got.shards.len(), cloned.shards.len());
        for (s, (a, b)) in got.shards.iter().zip(&cloned.shards).enumerate() {
            prop_assert_eq!(a.report.queries, b.report.queries,
                "shard {} cost diverged", s);
            prop_assert_eq!(a.tuples, b.tuples, "shard {} bag size diverged", s);
        }
    }

    /// Theorem: per-identity budgets are identical in both worlds. With a
    /// generous quota the runs succeed identically; with a starving quota
    /// both fail with the same salvaged partial (single worker, so the
    /// salvage order is deterministic).
    #[test]
    fn shared_store_budgets_match_clone_per_identity(
        inst in instance_strategy(),
        sessions in 1usize..4,
    ) {
        prop_assume!(inst.solvable());
        prop_assume!(sharded_supported(&inst));

        // Learn the true cost first. The generous quota must cover any
        // schedule the stealing pool produces — per-session maxima from
        // the reference run are schedule-dependent — so use the total.
        let full = Crawl::builder()
            .sessions(sessions)
            .run_sharded(|_s| inst.server(5))
            .unwrap();

        let generous = full.merged.queries + 1;
        let shared = inst.shared(5);
        let got = Crawl::builder()
            .sessions(sessions)
            .budget(generous)
            .run_sharded(|_s| shared.client())
            .unwrap();
        prop_assert!(bag(&got.merged.tuples).multiset_eq(&bag(&full.merged.tuples)));
        prop_assert_eq!(got.merged.queries, full.merged.queries);

        // Starve a deterministic single-identity run in both worlds.
        if full.merged.queries >= 2 {
            let starved = full.merged.queries / 2;
            let clone_err = Crawl::builder()
                .sessions(1)
                .budget(starved)
                .run_sharded(|_s| inst.server(5))
                .unwrap_err();
            let shared2 = inst.shared(5);
            let shared_err = Crawl::builder()
                .sessions(1)
                .budget(starved)
                .run_sharded(|_s| shared2.client())
                .unwrap_err();
            match (clone_err, shared_err) {
                (
                    CrawlError::Db { error: e1, partial: p1 },
                    CrawlError::Db { error: e2, partial: p2 },
                ) => {
                    prop_assert_eq!(format!("{e1}"), format!("{e2}"));
                    prop_assert!(bag(&p1.tuples).multiset_eq(&bag(&p2.tuples)),
                        "salvaged partials diverged");
                    prop_assert_eq!(p1.queries, p2.queries);
                }
                (a, b) => prop_assert!(false, "unexpected errors: {a:?} vs {b:?}"),
            }
        }
    }

    /// Satellite stress: `FaultyDb`-wrapped shared clients with retry ≡
    /// fault-free shared clients ≡ fault-free clones, concurrently on the
    /// pool. Per-identity fault schedules, per-client retry accounting.
    #[test]
    fn faulty_shared_clients_with_retry_equal_fault_free(
        inst in instance_strategy(),
        fault_seed in any::<u64>(),
        rate_pct in 0u32..=30,
    ) {
        prop_assume!(inst.solvable());
        prop_assume!(sharded_supported(&inst));

        let clean = Crawl::builder()
            .sessions(2)
            .oversubscribe(3)
            .run_sharded(|_s| inst.server(5))
            .unwrap();

        let shared = inst.shared(5);
        let faulty = Crawl::builder()
            .sessions(2)
            .oversubscribe(3)
            .retry(RetryPolicy::new(50).no_sleep())
            .run_sharded(|s| {
                FaultyDb::new(
                    shared.client(),
                    FaultConfig {
                        seed: fault_seed ^ s as u64,
                        transient_rate: f64::from(rate_pct) / 100.0,
                        burst: 1,
                        fail_after: None,
                    },
                )
            })
            .unwrap();

        prop_assert!(
            bag(&faulty.merged.tuples).multiset_eq(&bag(&clean.merged.tuples)),
            "faults on shared clients changed the merged bag"
        );
        prop_assert_eq!(faulty.merged.queries, clean.merged.queries,
            "failed attempts must never be charged, shared or not");
    }
}

/// Deterministic large-fleet stress on a real dataset shape: 8 sessions,
/// 4× oversubscription, fault-injected shared clients with retry — the
/// merged bag and cost must match a fault-free clone-per-identity crawl,
/// and the store must have served every identity without copies.
#[test]
fn yahoo_fleet_on_one_store_survives_faults_bit_identically() {
    let ds = hdc_data::yahoo::generate_scaled(6_000, 11);
    let k = 128;
    let cfg = ServerConfig { k, seed: 17 };

    let clean = Crawl::builder()
        .sessions(8)
        .oversubscribe(4)
        .run_sharded(|_s| {
            HiddenDbServer::new(ds.schema.clone(), ds.tuples.clone(), cfg).unwrap()
        })
        .unwrap();

    let shared = SharedServer::new(ds.schema.clone(), ds.tuples.clone(), cfg).unwrap();
    let got = Crawl::builder()
        .sessions(8)
        .oversubscribe(4)
        .retry(RetryPolicy::new(50).no_sleep())
        .run_sharded(|s| {
            FaultyDb::new(
                shared.client(),
                FaultConfig {
                    seed: 0xfa57 ^ (s as u64) << 3,
                    transient_rate: 0.10,
                    burst: 2,
                    fail_after: None,
                },
            )
        })
        .unwrap();

    assert!(
        bag(&got.merged.tuples).multiset_eq(&bag(&clean.merged.tuples)),
        "shared-store fleet under faults diverged from clean clone fleet"
    );
    assert_eq!(got.merged.queries, clean.merged.queries);
    assert_eq!(
        got.merged.tuples.len(),
        ds.tuples.len(),
        "complete extraction"
    );
}
