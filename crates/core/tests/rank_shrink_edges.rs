//! Rank-shrink edge cases, differential against the brute-force oracle.
//!
//! Until now k = 1, single-tuple tables, and all-ties rankings were only
//! covered incidentally through crawl-level suites; this file pins them
//! directly: every crawl's bag is compared against the instance's full
//! table (the brute-force ground truth), across priority permutations
//! and the degenerate rankings a real server could serve.

use proptest::prelude::*;

use hdc_core::{verify_complete, CrawlError, Crawler, RankShrink};
use hdc_server::{HiddenDbServer, ServerConfig};
use hdc_types::tuple::int_tuple;
use hdc_types::{Schema, Tuple, TupleBag};

fn schema_1d() -> Schema {
    Schema::builder()
        .numeric("x", i64::MIN, i64::MAX)
        .build()
        .unwrap()
}

fn schema_nd(d: usize) -> Schema {
    let mut b = Schema::builder();
    for i in 0..d {
        b = b.numeric(format!("x{i}"), -1_000, 1_000);
    }
    b.build().unwrap()
}

// ------------------------------------------------------------- k = 1 --

/// k = 1: every overflowing window holds exactly one tuple, so the pivot
/// is always that tuple's value with multiplicity 1 = k > k/4 — every
/// split is 3-way. Distinct-valued data must still crawl completely.
#[test]
fn k1_distinct_values_complete() {
    for seed in 0..4u64 {
        let rows: Vec<Tuple> = (0..40).map(|v| int_tuple(&[v * 3 - 50])).collect();
        let mut db =
            HiddenDbServer::new(schema_1d(), rows.clone(), ServerConfig { k: 1, seed }).unwrap();
        let report = RankShrink::new().crawl(&mut db).unwrap();
        verify_complete(&rows, &report).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        // 3-way splits dominate; 2-way would need a light pivot, which
        // k = 1 can never produce.
        assert_eq!(report.metrics.two_way_splits, 0, "seed {seed}");
        assert!(report.metrics.three_way_splits > 0, "seed {seed}");
    }
}

/// k = 1 with any duplicate value is unsolvable (the server can withhold
/// the second copy forever) and must be detected, not mis-extracted.
#[test]
fn k1_any_duplicate_is_unsolvable() {
    let rows = vec![int_tuple(&[5]), int_tuple(&[5]), int_tuple(&[9])];
    let mut db = HiddenDbServer::new(schema_1d(), rows, ServerConfig { k: 1, seed: 3 }).unwrap();
    let err = RankShrink::new().crawl(&mut db).unwrap_err();
    assert!(matches!(err, CrawlError::Unsolvable { .. }));
}

/// k = 1 in higher dimension: the exhausted-line sub-crawls recurse all
/// the way to points.
#[test]
fn k1_multidimensional_complete() {
    let rows: Vec<Tuple> = (0..30)
        .map(|i| int_tuple(&[(i * 7) % 23 - 11, (i * 13) % 19 - 9]))
        .collect();
    // All points distinct?  (i*7 mod 23, i*13 mod 19) for i in 0..30 —
    // verify via the bag, and the assert below guards the assumption.
    let bag = TupleBag::from_tuples(rows.iter().cloned());
    assert_eq!(bag.max_multiplicity(), 1, "test data must be duplicate-free");
    let mut db =
        HiddenDbServer::new(schema_nd(2), rows.clone(), ServerConfig { k: 1, seed: 7 }).unwrap();
    let report = RankShrink::new().crawl(&mut db).unwrap();
    verify_complete(&rows, &report).unwrap();
}

// -------------------------------------------------- single-tuple tables --

/// A single-tuple table resolves at the root for every k ≥ 1 — exactly
/// one query, no splits, regardless of dimension.
#[test]
fn single_tuple_tables_cost_one_query() {
    for d in 1..4usize {
        for k in [1usize, 2, 1000] {
            let rows = vec![int_tuple(&vec![42i64; d])];
            let mut db =
                HiddenDbServer::new(schema_nd(d), rows.clone(), ServerConfig { k, seed: 0 })
                    .unwrap();
            let report = RankShrink::new().crawl(&mut db).unwrap();
            verify_complete(&rows, &report).unwrap();
            assert_eq!(report.queries, 1, "d={d} k={k}");
            assert_eq!(report.metrics.two_way_splits, 0);
            assert_eq!(report.metrics.three_way_splits, 0);
        }
    }
}

/// A single tuple duplicated exactly k times is the solvability
/// boundary: feasible at multiplicity = k, unsolvable at k + 1.
#[test]
fn single_point_at_the_multiplicity_boundary() {
    for k in [1usize, 2, 5] {
        let at_k: Vec<Tuple> = std::iter::repeat_n(int_tuple(&[7]), k).collect();
        let mut db =
            HiddenDbServer::new(schema_1d(), at_k.clone(), ServerConfig { k, seed: 1 }).unwrap();
        verify_complete(&at_k, &RankShrink::new().crawl(&mut db).unwrap()).unwrap();

        let over: Vec<Tuple> = std::iter::repeat_n(int_tuple(&[7]), k + 1).collect();
        let mut db =
            HiddenDbServer::new(schema_1d(), over, ServerConfig { k, seed: 1 }).unwrap();
        assert!(matches!(
            RankShrink::new().crawl(&mut db),
            Err(CrawlError::Unsolvable { .. })
        ));
    }
}

// ----------------------------------------------------- all-ties ranking --

/// All-ties ranking: every tuple carries the same priority, so the
/// server's response order degenerates to input position. The crawl must
/// not depend on priority diversity.
#[test]
fn all_ties_ranking_is_crawled_completely() {
    let rows: Vec<Tuple> = (0..100).map(|v| int_tuple(&[(v * 11) % 64])).collect();
    let flat = vec![7u64; rows.len()];
    for k in [1usize, 4, 16] {
        let solvable = TupleBag::from_tuples(rows.iter().cloned()).max_multiplicity() <= k;
        let mut db =
            HiddenDbServer::with_priorities(schema_1d(), rows.clone(), k, &flat).unwrap();
        match RankShrink::new().crawl(&mut db) {
            Ok(report) => {
                assert!(solvable, "k={k}: crawl succeeded on unsolvable instance");
                verify_complete(&rows, &report).unwrap_or_else(|e| panic!("k={k}: {e}"));
            }
            Err(CrawlError::Unsolvable { .. }) => assert!(!solvable, "k={k}"),
            Err(e) => panic!("k={k}: unexpected error {e}"),
        }
    }
}

/// All-ties vs fully-distinct priorities on the same data: both crawls
/// recover the identical bag (costs may differ — the ranking shapes the
/// windows — but completeness may not).
#[test]
fn ranking_never_affects_the_recovered_bag() {
    let rows: Vec<Tuple> = (0..80).map(|v| int_tuple(&[v % 37])).collect();
    let flat = vec![1u64; rows.len()];
    let distinct: Vec<u64> = (0..rows.len() as u64).collect();
    let k = 8;
    let mut db_flat =
        HiddenDbServer::with_priorities(schema_1d(), rows.clone(), k, &flat).unwrap();
    let mut db_distinct =
        HiddenDbServer::with_priorities(schema_1d(), rows.clone(), k, &distinct).unwrap();
    let a = RankShrink::new().crawl(&mut db_flat).unwrap();
    let b = RankShrink::new().crawl(&mut db_distinct).unwrap();
    verify_complete(&rows, &a).unwrap();
    verify_complete(&rows, &b).unwrap();
}

// ----------------------------------------------- randomized differential --

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Random small instances at k ∈ {1, 2, 3} — the regime where every
    /// window is tiny and 3-way splits dominate — against the
    /// brute-force oracle, under both random and all-ties rankings.
    #[test]
    fn tiny_k_differential_against_oracle(
        values in proptest::collection::vec(-50i64..50, 0..60),
        k in 1usize..4,
        seed in any::<u64>(),
        all_ties in any::<bool>(),
    ) {
        let rows: Vec<Tuple> = values.iter().map(|&v| int_tuple(&[v])).collect();
        let solvable =
            TupleBag::from_tuples(rows.iter().cloned()).max_multiplicity() <= k;
        let mut db = if all_ties {
            let flat = vec![9u64; rows.len()];
            HiddenDbServer::with_priorities(schema_1d(), rows.clone(), k, &flat).unwrap()
        } else {
            HiddenDbServer::new(schema_1d(), rows.clone(), ServerConfig { k, seed }).unwrap()
        };
        match RankShrink::new().crawl(&mut db) {
            Ok(report) => {
                prop_assert!(solvable, "crawl succeeded on unsolvable instance");
                prop_assert!(verify_complete(&rows, &report).is_ok());
            }
            Err(CrawlError::Unsolvable { .. }) => prop_assert!(!solvable),
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }
}
