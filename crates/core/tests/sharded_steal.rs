//! Differential suite for the work-stealing sharded scheduler.
//!
//! The scheduler's determinism contract (see `hdc_core::sharded` module
//! docs) says scheduling must be invisible to everything but wall-clock:
//! an over-partitioned work-stealing crawl and a *sequential*
//! one-shard-at-a-time execution of the very same plan must produce an
//! identical merged bag, identical total query count, and identical
//! per-shard costs — across arbitrary schemas, datasets, `k`, priority
//! seeds, session counts, and oversubscription factors. A second
//! property covers the failure path: a budget-crippled identity may kill
//! its own shards, but everything the surviving identities can reach is
//! still salvaged, and nothing fabricated ever appears.

use proptest::prelude::*;

use hdc_core::{verify_complete, CrawlError, Sharded};
use hdc_server::{Budgeted, HiddenDbServer, ServerConfig};
use hdc_types::{AttrKind, Schema, Tuple, TupleBag, Value};

/// A generated test instance: schema + tuples + k.
#[derive(Debug, Clone)]
struct Instance {
    schema: Schema,
    tuples: Vec<Tuple>,
    k: usize,
}

impl Instance {
    fn solvable(&self) -> bool {
        TupleBag::from_tuples(self.tuples.iter().cloned()).max_multiplicity() <= self.k
    }

    fn server(&self, seed: u64) -> HiddenDbServer {
        HiddenDbServer::new(
            self.schema.clone(),
            self.tuples.clone(),
            ServerConfig { k: self.k, seed },
        )
        .unwrap()
    }
}

/// Schemas with 1–3 attributes, small domains so duplicates, overflows,
/// empty shards, and every sub-splitting mode (secondary categorical,
/// numeric fallback, single-value cap) all occur.
fn instance_strategy() -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec((any::<bool>(), 2u32..7, 1i64..25), 1..4),
        2usize..10,
        0usize..120,
        any::<u64>(),
    )
        .prop_map(|(attrs, k, n, seed)| {
            let mut builder = Schema::builder();
            let mut kinds = Vec::new();
            for (i, &(is_cat, u, w)) in attrs.iter().enumerate() {
                if is_cat {
                    builder = builder.categorical(format!("c{i}"), u);
                    kinds.push(AttrKind::Categorical { size: u });
                } else {
                    builder = builder.numeric(format!("n{i}"), -w, w);
                    kinds.push(AttrKind::Numeric { min: -w, max: w });
                }
            }
            let schema = builder.build().unwrap();
            let mut x = seed | 1;
            let mut next = move || {
                // xorshift64*
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                x.wrapping_mul(0x2545_f491_4f6c_dd1d)
            };
            let tuples: Vec<Tuple> = (0..n)
                .map(|_| {
                    Tuple::new(
                        kinds
                            .iter()
                            .map(|&kind| match kind {
                                AttrKind::Categorical { size } => {
                                    Value::Cat((next() % u64::from(size)) as u32)
                                }
                                AttrKind::Numeric { min, max } => {
                                    let span = (max - min + 1) as u64;
                                    Value::Int(min + (next() % span) as i64)
                                }
                            })
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            Instance { schema, tuples, k }
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Work-stealing execution ≡ sequential execution of the same plan:
    /// same merged bag (the exact database), same total cost, same
    /// per-shard costs.
    #[test]
    fn stealing_is_invisible_to_bag_and_cost(
        inst in instance_strategy(),
        sessions in 2usize..4,
        factor in 2usize..5,
    ) {
        prop_assume!(inst.solvable());

        let stolen = Sharded::new(sessions)
            .oversubscribed(factor)
            .crawl(|_s| inst.server(11));
        let stolen = match stolen {
            Ok(report) => report,
            Err(e) => {
                prop_assert!(false, "stealing crawl failed on solvable instance: {e}");
                unreachable!()
            }
        };
        prop_assert!(verify_complete(&inst.tuples, &stolen.merged).is_ok());

        // The same plan, crawled shard by shard on one fresh connection
        // each — no pool, no concurrency.
        let plan = Sharded::plan_oversubscribed(&inst.schema, sessions, factor);
        prop_assert_eq!(plan.len(), stolen.shards.len());
        let mut seq_total = 0u64;
        let mut seq_bag = TupleBag::new();
        for (i, spec) in plan.iter().enumerate() {
            let mut db = inst.server(11);
            let report = spec.crawl(&mut db, &inst.schema).unwrap();
            prop_assert_eq!(
                report.queries,
                stolen.shards[i].report.queries,
                "shard {} cost changed under stealing",
                i
            );
            prop_assert_eq!(report.tuples.len() as u64, stolen.shards[i].tuples);
            seq_total += report.queries;
            for t in report.tuples {
                seq_bag.insert(t);
            }
        }
        prop_assert_eq!(stolen.merged.queries, seq_total);
        let stolen_bag: TupleBag = stolen.merged.tuples.iter().collect();
        prop_assert!(stolen_bag.multiset_eq(&seq_bag));

        // Per-identity aggregates re-partition exactly the shard costs.
        prop_assert_eq!(stolen.per_session.len(), sessions);
        let identity_total: u64 = stolen.per_session.iter().map(|r| r.queries).sum();
        prop_assert_eq!(identity_total, seq_total);
    }

    /// Failure path: identity 0 has a crippling budget. Either the crawl
    /// still completes (tiny instances fit the budget) with the exact
    /// bag, or it fails with a budget error whose partial report contains
    /// no fabricated tuples and everything healthy identities salvaged.
    #[test]
    fn crippled_identity_never_fabricates_and_still_salvages(
        inst in instance_strategy(),
        budget in 1u64..25,
        factor in 2usize..5,
    ) {
        prop_assume!(inst.solvable());
        let sessions = 2usize;
        let result = Sharded::new(sessions)
            .oversubscribed(factor)
            .crawl(|s| {
                Budgeted::new(inst.server(13), if s == 0 { budget } else { u64::MAX })
            });
        match result {
            Ok(report) => {
                prop_assert!(verify_complete(&inst.tuples, &report.merged).is_ok());
            }
            Err(CrawlError::Db { partial, .. }) => {
                let truth: TupleBag = inst.tuples.iter().collect();
                let got: TupleBag = partial.tuples.iter().collect();
                for (t, c) in got.iter() {
                    prop_assert!(c <= truth.count(t), "fabricated tuple {}", t);
                }
            }
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
        }
    }
}

/// Deterministic salvage check: with 4 shards, 2 identities, and
/// identity 0 dead after 2 queries, exactly one shard can fail (the
/// crippled worker retires on its first shard; every other shard runs on
/// the healthy identity). At least 3 of the 4 shards' bags must appear
/// completely in the partial report, whichever shard the scheduler
/// happened to hand the dying worker.
#[test]
fn budget_crippled_session_salvages_healthy_shards() {
    let schema = Schema::builder()
        .categorical("c", 4)
        .numeric("x", 0, 9_999)
        .build()
        .unwrap();
    let tuples: Vec<Tuple> = (0..2_000u64)
        .map(|i| {
            let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
            Tuple::new(vec![
                Value::Cat((h % 4) as u32),
                Value::Int(((h >> 8) % 10_000) as i64),
            ])
        })
        .collect();
    let server = |seed: u64| {
        HiddenDbServer::new(schema.clone(), tuples.clone(), ServerConfig { k: 16, seed }).unwrap()
    };

    // Reference bags: one sequential crawl per shard of the same plan.
    let plan = Sharded::plan_oversubscribed(&schema, 2, 2);
    assert_eq!(plan.len(), 4);
    let shard_bags: Vec<TupleBag> = plan
        .iter()
        .map(|spec| {
            let mut db = server(29);
            TupleBag::from_tuples(spec.crawl(&mut db, &schema).unwrap().tuples)
        })
        .collect();
    assert!(
        shard_bags.iter().all(|b| !b.is_empty()),
        "every shard must hold data for the salvage count to mean anything"
    );

    let result = Sharded::new(2)
        .oversubscribed(2)
        .crawl(|s| Budgeted::new(server(29), if s == 0 { 2 } else { u64::MAX }));
    let Err(CrawlError::Db { error, partial }) = result else {
        panic!("expected the crippled identity to surface a budget failure");
    };
    assert!(matches!(error, hdc_types::DbError::BudgetExhausted { .. }));

    let got: TupleBag = partial.tuples.iter().collect();
    let salvaged = shard_bags
        .iter()
        .filter(|bag| bag.iter().all(|(t, c)| got.count(t) >= c))
        .count();
    assert!(
        salvaged >= 3,
        "only {salvaged} of 4 shard bags were salvaged by the healthy identity"
    );
}
