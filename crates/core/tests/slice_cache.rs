//! The cross-batch slice-list cache: invariance + hit accounting.
//!
//! The extended-DFS slice table memoizes every fetched slice for the
//! whole session, so the slice lists one node's `MAX_BATCH` windows
//! materialize are served for free to every later request — the node's
//! own per-value lookups, sibling subtrees at the same level, and (for
//! the eager variant) the entire DFS after preprocessing.
//! `CrawlMetrics::slice_cache_hits` now counts those free servings.
//!
//! The cache must be *invisible* to everything except the counter: this
//! suite asserts (differentially, over random instances) that
//!
//! * the query sequence reaching the database is identical whether the
//!   database has a native batch path or answers with the per-query
//!   loop (so the cache interacts with neither batching nor costs);
//! * no slice query is ever issued twice in one session — the memo *is*
//!   the reason costs stay at the Lemma 4 bound;
//! * hits are really counted: the eager variant's DFS re-requests every
//!   prefetched slice, so its hit count is at least its fetch count.

use proptest::prelude::*;

use hdc_core::{verify_complete, Crawler, Hybrid, SliceCover};
use hdc_server::{HiddenDbServer, ServerConfig};
use hdc_types::{
    AttrKind, DbError, HiddenDatabase, Query, QueryOutcome, Schema, Tuple, TupleBag, Value,
};

/// A generated categorical/mixed instance.
#[derive(Debug, Clone)]
struct Instance {
    schema: Schema,
    tuples: Vec<Tuple>,
    k: usize,
}

impl Instance {
    fn solvable(&self) -> bool {
        TupleBag::from_tuples(self.tuples.iter().cloned()).max_multiplicity() <= self.k
    }

    fn server(&self, seed: u64) -> HiddenDbServer {
        HiddenDbServer::new(
            self.schema.clone(),
            self.tuples.clone(),
            ServerConfig { k: self.k, seed },
        )
        .unwrap()
    }
}

/// 1–3 categorical attributes (some domains wider than `MAX_BATCH` so
/// one node really spans several windows), optionally one numeric tail
/// so the Hybrid leaf path is exercised too.
fn instance_strategy() -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec(2u32..24, 1..4),
        any::<bool>(),
        2usize..10,
        0usize..150,
        any::<u64>(),
    )
        .prop_map(|(domains, numeric_tail, k, n, seed)| {
            let mut builder = Schema::builder();
            for (i, &u) in domains.iter().enumerate() {
                builder = builder.categorical(format!("c{i}"), u);
            }
            if numeric_tail {
                builder = builder.numeric("x", 0, 40);
            }
            let schema = builder.build().unwrap();
            let mut x = seed | 1;
            let mut next = move || {
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                x.wrapping_mul(0x2545_f491_4f6c_dd1d)
            };
            let tuples: Vec<Tuple> = (0..n)
                .map(|_| {
                    Tuple::new(
                        (0..schema.arity())
                            .map(|a| match schema.kind(a) {
                                AttrKind::Categorical { size } => {
                                    Value::Cat((next() % u64::from(size)) as u32)
                                }
                                AttrKind::Numeric { min, max } => {
                                    let span = (max - min + 1) as u64;
                                    Value::Int(min + (next() % span) as i64)
                                }
                            })
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            Instance { schema, tuples, k }
        })
}

/// Records the flattened query sequence reaching the inner database.
struct Trace<D> {
    inner: D,
    seq: Vec<Query>,
}

impl<D: HiddenDatabase> HiddenDatabase for Trace<D> {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn k(&self) -> usize {
        self.inner.k()
    }

    fn query(&mut self, q: &Query) -> Result<QueryOutcome, DbError> {
        self.seq.push(q.clone());
        self.inner.query(q)
    }

    fn query_batch(&mut self, queries: &[Query]) -> Result<Vec<QueryOutcome>, DbError> {
        self.seq.extend(queries.iter().cloned());
        self.inner.query_batch(queries)
    }

    fn queries_issued(&self) -> u64 {
        self.inner.queries_issued()
    }
}

/// Strips the native batch path (default per-query loop).
struct PerQueryLoop<D>(D);

impl<D: HiddenDatabase> HiddenDatabase for PerQueryLoop<D> {
    fn schema(&self) -> &Schema {
        self.0.schema()
    }

    fn k(&self) -> usize {
        self.0.k()
    }

    fn query(&mut self, q: &Query) -> Result<QueryOutcome, DbError> {
        self.0.query(q)
    }

    fn queries_issued(&self) -> u64 {
        self.0.queries_issued()
    }
}

fn crawlers() -> Vec<(&'static str, Box<dyn Crawler>)> {
    vec![
        ("eager", Box::new(SliceCover::eager())),
        ("lazy", Box::new(SliceCover::lazy())),
        ("hybrid", Box::new(Hybrid::new())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Query sequences, costs, bags, and the hit counter itself are all
    /// identical between batched and per-query execution, no slice query
    /// is ever issued twice, and the crawl stays complete.
    #[test]
    fn slice_cache_is_invisible_to_query_sets_and_costs(inst in instance_strategy()) {
        prop_assume!(inst.solvable());
        for (name, crawler) in crawlers() {
            if !crawler.supports(&inst.schema) {
                continue; // slice-cover needs all-categorical schemas
            }
            let mut batched = Trace { inner: inst.server(19), seq: Vec::new() };
            let out_b = crawler.crawl(&mut batched).unwrap();
            prop_assert!(verify_complete(&inst.tuples, &out_b).is_ok(), "{}", name);

            let mut looped = Trace { inner: PerQueryLoop(inst.server(19)), seq: Vec::new() };
            let out_l = crawler.crawl(&mut looped).unwrap();

            prop_assert_eq!(&batched.seq, &looped.seq, "{}: query sequences diverged", name);
            prop_assert_eq!(out_b.queries, out_l.queries, "{}", name);
            prop_assert_eq!(
                out_b.metrics.slice_cache_hits,
                out_l.metrics.slice_cache_hits,
                "{}: hit accounting must not depend on batching",
                name
            );

            // The memo's contract: a slice query (exactly one constrained
            // attribute, categorical equality) is never paid for twice.
            // This now includes Hybrid: its one by-design re-issue — the
            // rank-shrink sub-crawl rooted at an overflowed leaf slice —
            // is gone, because the slice table caches the k-window of
            // overflowed leaf-level slices and seeds the sub-crawl with
            // the recorded response.
            let mut slice_queries: Vec<&Query> = batched
                .seq
                .iter()
                .filter(|q| {
                    q.constrained_count() == 1
                        && q.preds().iter().any(|p| matches!(p, hdc_types::Predicate::Eq(_)))
                })
                .collect();
            let total = slice_queries.len();
            slice_queries.sort_by_key(|q| format!("{q}"));
            slice_queries.dedup();
            prop_assert_eq!(total, slice_queries.len(), "{}: a slice was re-issued", name);
            prop_assert_eq!(
                out_b.metrics.slice_fetches, total as u64,
                "{}: every slice fetch is a distinct issued slice query",
                name
            );
        }
    }

    /// The eager variant proves the counter: preprocessing fetches every
    /// slice, so the DFS afterwards runs entirely on cache hits — at
    /// least one hit per slice the DFS consults, and never fewer hits
    /// than the lazy variant sees on the same instance.
    #[test]
    fn eager_preprocessing_turns_the_dfs_into_cache_hits(inst in instance_strategy()) {
        prop_assume!(inst.solvable());
        prop_assume!(inst.schema.is_categorical());
        let mut db = inst.server(29);
        let eager = SliceCover::eager().crawl(&mut db).unwrap();
        // The root expansion alone re-requests the whole first level.
        let first_level = match inst.schema.kind(0) {
            AttrKind::Categorical { size } => u64::from(size),
            AttrKind::Numeric { .. } => unreachable!("all-categorical instance"),
        };
        prop_assert!(
            eager.metrics.slice_cache_hits >= first_level,
            "eager crawl saw {} hits, expected at least the {} root-level re-requests",
            eager.metrics.slice_cache_hits,
            first_level
        );
    }
}
