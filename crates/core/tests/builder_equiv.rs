//! Differential suite for the one-stop [`CrawlBuilder`]: the builder is
//! a *front end*, not a fork — every strategy × {solo, sharded} ×
//! {budgeted, unbudgeted} run must be **bit-identical** to the legacy
//! entry point it wraps (same bag, same query count and tallies, same
//! progress curve, same per-shard costs), `Strategy::Auto` must select
//! the paper's choice per schema kind (§2.2 / §3.2 / §5), and an
//! observer stop must yield a partial report that is a prefix-consistent
//! subset of the full crawl.

use proptest::prelude::*;
use proptest::Strategy as PropStrategy;

use hdc_core::{
    Crawl, CrawlError, CrawlObserver, CrawlReport, Crawler, Flow, Hybrid, RankShrink, Sharded,
    SliceCover, Strategy, MAX_BATCH,
};
use hdc_types::{
    AttrKind, Budgeted, HiddenDatabase, Query, QueryOutcome, Schema, Tuple, TupleBag, Value,
};

/// A generated test instance: schema + tuples + k.
#[derive(Debug, Clone)]
struct Instance {
    schema: Schema,
    tuples: Vec<Tuple>,
    k: usize,
}

impl Instance {
    fn solvable(&self) -> bool {
        TupleBag::from_tuples(self.tuples.iter().cloned()).max_multiplicity() <= self.k
    }

    fn server(&self, seed: u64) -> hdc_server::HiddenDbServer {
        hdc_server::HiddenDbServer::new(
            self.schema.clone(),
            self.tuples.clone(),
            hdc_server::ServerConfig { k: self.k, seed },
        )
        .unwrap()
    }
}

/// Schemas with 1–3 attributes of both kinds, small domains so
/// duplicates, overflow, and unsolvable instances all occur.
fn instance_strategy() -> impl PropStrategy<Value = Instance> {
    (
        proptest::collection::vec((any::<bool>(), 2u32..7, 1i64..25), 1..4),
        2usize..10,
        0usize..120,
        any::<u64>(),
    )
        .prop_map(|(attrs, k, n, seed)| {
            let mut builder = Schema::builder();
            let mut kinds = Vec::new();
            for (i, &(is_cat, u, w)) in attrs.iter().enumerate() {
                if is_cat {
                    builder = builder.categorical(format!("c{i}"), u);
                    kinds.push(AttrKind::Categorical { size: u });
                } else {
                    builder = builder.numeric(format!("n{i}"), -w, w);
                    kinds.push(AttrKind::Numeric { min: -w, max: w });
                }
            }
            let schema = builder.build().unwrap();
            let mut x = seed | 1;
            let mut next = move || {
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                x.wrapping_mul(0x2545_f491_4f6c_dd1d)
            };
            let tuples: Vec<Tuple> = (0..n)
                .map(|_| {
                    Tuple::new(
                        kinds
                            .iter()
                            .map(|&kind| match kind {
                                AttrKind::Categorical { size } => {
                                    Value::Cat((next() % u64::from(size)) as u32)
                                }
                                AttrKind::Numeric { min, max } => {
                                    let span = (max - min + 1) as u64;
                                    Value::Int(min + (next() % span) as i64)
                                }
                            })
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            Instance { schema, tuples, k }
        })
}

/// Every (strategy, legacy crawler) pair applicable to the schema. Auto
/// is always included — its legacy counterpart is the paper's choice.
fn applicable(schema: &Schema) -> Vec<(Strategy<'static>, Box<dyn Crawler>)> {
    let mut pairs: Vec<(Strategy<'static>, Box<dyn Crawler>)> = vec![
        (Strategy::Hybrid, Box::new(Hybrid::new())),
        (
            Strategy::Auto,
            match Strategy::Auto.resolve(schema) {
                Strategy::RankShrink => Box::new(RankShrink::new()),
                Strategy::SliceCover { lazy: true } => Box::new(SliceCover::lazy()),
                _ => Box::new(Hybrid::new()),
            },
        ),
    ];
    if schema.is_numeric() {
        pairs.push((Strategy::RankShrink, Box::new(RankShrink::new())));
        pairs.push((
            Strategy::BinaryShrink,
            Box::new(hdc_core::BinaryShrink::new()),
        ));
    }
    if schema.is_categorical() {
        pairs.push((
            Strategy::SliceCover { lazy: true },
            Box::new(SliceCover::lazy()),
        ));
        pairs.push((
            Strategy::SliceCover { lazy: false },
            Box::new(SliceCover::eager()),
        ));
        pairs.push((Strategy::Dfs, Box::new(hdc_core::Dfs::new())));
    }
    pairs
}

/// Full bit-identity between two crawl results (success or failure).
fn assert_identical(
    name: &str,
    legacy: &Result<CrawlReport, CrawlError>,
    built: &Result<CrawlReport, CrawlError>,
) -> Result<(), TestCaseError> {
    let (a, b) = match (legacy, built) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(ea), Err(eb)) => {
            prop_assert_eq!(
                std::mem::discriminant(ea),
                std::mem::discriminant(eb),
                "{}: error kinds diverged",
                name
            );
            (ea.partial(), eb.partial())
        }
        (a, b) => {
            prop_assert!(
                false,
                "{}: one run succeeded and the other failed (legacy ok = {}, builder ok = {})",
                name,
                a.is_ok(),
                b.is_ok()
            );
            unreachable!()
        }
    };
    prop_assert_eq!(a.algorithm, b.algorithm, "{}", name);
    prop_assert_eq!(a.queries, b.queries, "{}", name);
    prop_assert_eq!(a.resolved, b.resolved, "{}", name);
    prop_assert_eq!(a.overflowed, b.overflowed, "{}", name);
    prop_assert_eq!(a.pruned, b.pruned, "{}", name);
    prop_assert_eq!(&a.progress, &b.progress, "{}", name);
    prop_assert_eq!(&a.tuples, &b.tuples, "{}: bags diverged", name);
    Ok(())
}

/// Stops after observing `limit` charged queries.
struct StopAfter {
    limit: u64,
    seen: u64,
}

impl CrawlObserver for StopAfter {
    fn on_query(&mut self, _q: &Query, _out: &QueryOutcome) -> Flow {
        self.seen += 1;
        if self.seen >= self.limit {
            Flow::Stop
        } else {
            Flow::Continue
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Solo: builder ≡ legacy constructor + `Crawler::crawl`, for every
    /// applicable strategy, with and without a budget (the budgeted
    /// legacy run hand-wraps the server in `Budgeted`, exactly what the
    /// builder is supposed to replace).
    #[test]
    fn builder_solo_is_bit_identical_to_legacy(
        inst in instance_strategy(),
        raw_budget in 0u64..60, // 0 = unbudgeted (compat proptest has no option::of)
    ) {
        let budget = (raw_budget > 0).then_some(raw_budget);
        for (strategy, crawler) in applicable(&inst.schema) {
            let name = format!("{strategy:?} budget={budget:?}");

            let legacy = match budget {
                Some(limit) => {
                    let mut db = Budgeted::new(inst.server(23), limit);
                    crawler.crawl(&mut db)
                }
                None => crawler.crawl(&mut inst.server(23)),
            };

            let mut server = inst.server(23);
            let mut builder = Crawl::builder().strategy(strategy);
            if let Some(limit) = budget {
                builder = builder.budget(limit);
            }
            let built = builder.run(&mut server);

            assert_identical(&name, &legacy, &built)?;
        }
    }

    /// Sharded: builder ≡ `Sharded::new(..).oversubscribed(..).crawl`,
    /// including identical per-shard costs (the scheduler's determinism
    /// contract seen through the new front end), with and without a
    /// per-identity budget.
    #[test]
    fn builder_sharded_is_bit_identical_to_legacy(
        inst in instance_strategy(),
        sessions in 2usize..4,
        factor in 1usize..4,
        raw_budget in proptest::collection::vec(5u64..60, 0..2), // empty = unbudgeted
    ) {
        prop_assume!(inst.solvable());
        let budget = raw_budget.first().copied();
        let legacy = match budget {
            Some(limit) => Sharded::new(sessions)
                .oversubscribed(factor)
                .crawl(|_s| Budgeted::new(inst.server(31), limit)),
            None => Sharded::new(sessions)
                .oversubscribed(factor)
                .crawl(|_s| inst.server(31)),
        };
        let mut builder = Crawl::builder()
            .strategy(Strategy::Hybrid)
            .sessions(sessions)
            .oversubscribe(factor);
        if let Some(limit) = budget {
            builder = builder.budget(limit);
        }
        let built = builder.run_sharded(|_s| inst.server(31));

        match (legacy, built) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.merged.queries, b.merged.queries);
                prop_assert_eq!(&a.merged.tuples, &b.merged.tuples);
                prop_assert_eq!(a.shards.len(), b.shards.len());
                for (sa, sb) in a.shards.iter().zip(&b.shards) {
                    prop_assert_eq!(&sa.spec, &sb.spec);
                    prop_assert_eq!(
                        sa.report.queries, sb.report.queries,
                        "per-shard cost diverged"
                    );
                    prop_assert_eq!(sa.tuples, sb.tuples);
                }
            }
            (Err(ea), Err(eb)) => {
                prop_assert_eq!(std::mem::discriminant(&ea), std::mem::discriminant(&eb));
                // Which shards completed before retirement is a
                // scheduling accident, so partials are not compared —
                // matching failure kinds is the contract.
            }
            (a, b) => prop_assert!(
                false,
                "one run succeeded and the other failed (legacy ok = {}, builder ok = {})",
                a.is_ok(),
                b.is_ok()
            ),
        }
    }

    /// `Strategy::Auto` picks the paper's choice, verified end to end by
    /// the algorithm name the report carries.
    #[test]
    fn auto_selects_the_papers_strategy(inst in instance_strategy()) {
        let expected = if inst.schema.is_numeric() {
            "rank-shrink"
        } else if inst.schema.is_categorical() {
            "lazy-slice-cover"
        } else {
            "hybrid"
        };
        let result = Crawl::builder().run(&mut inst.server(7));
        let report = match &result {
            Ok(r) => r,
            Err(e) => e.partial(),
        };
        prop_assert_eq!(report.algorithm, expected);
    }

    /// Early stop: a crawl stopped after Q observed queries yields a
    /// partial report that is a *prefix* of the full crawl — the exact
    /// same query charges, progress points, and output-order tuples up
    /// to the stop, with at most one in-flight batch window beyond Q.
    #[test]
    fn stopped_crawl_is_a_prefix_of_the_full_crawl(
        inst in instance_strategy(),
        stop_after in 1u64..40,
    ) {
        prop_assume!(inst.solvable());
        let full = match Crawl::builder().run(&mut inst.server(13)) {
            Ok(report) => report,
            Err(e) => {
                prop_assert!(false, "solvable instance failed: {e}");
                unreachable!()
            }
        };

        let mut stopper = StopAfter { limit: stop_after, seen: 0 };
        let mut server = inst.server(13);
        let stopped = match Crawl::builder().observer(&mut stopper).run(&mut server) {
            Ok(report) => {
                // The crawl finished before a post-stop issue attempt:
                // either under the threshold outright, or on the very
                // batch whose outcomes latched the stop.
                prop_assert!(report.queries <= stop_after + MAX_BATCH as u64);
                return Ok(());
            }
            Err(CrawlError::Stopped { partial }) => *partial,
            Err(e) => {
                prop_assert!(false, "unexpected failure: {e}");
                unreachable!()
            }
        };

        // Stop lands between query rounds: everything charged up to (and
        // including) the round in flight is kept, nothing more issued.
        prop_assert!(stopped.queries >= stop_after.min(full.queries));
        prop_assert!(stopped.queries <= stop_after + MAX_BATCH as u64);
        prop_assert_eq!(stopped.queries, server.queries_issued());

        // Prefix consistency: identical progress points and identical
        // tuples, in output order, up to the stop.
        prop_assert!(stopped.progress.len() <= full.progress.len());
        prop_assert_eq!(
            &stopped.progress[..],
            &full.progress[..stopped.progress.len()],
            "stopped progress curve is not a prefix of the full curve"
        );
        prop_assert!(stopped.tuples.len() <= full.tuples.len());
        prop_assert_eq!(
            &stopped.tuples[..],
            &full.tuples[..stopped.tuples.len()],
            "stopped bag is not a prefix of the full bag"
        );
    }
}

// ---------------------------------------------------------------------
// Telemetry inertness: subscribing an observer changes nothing.
// ---------------------------------------------------------------------

/// Subscribes to everything and always continues; the slow variant
/// sleeps inside `on_tuples`, so in sharded runs the bounded event
/// channel fills and pool workers block on `send` — the worst-case
/// consumer the inertness contract must survive.
struct SlowTap {
    queries: u64,
    tuples: u64,
    stall: std::time::Duration,
}

impl CrawlObserver for SlowTap {
    fn on_query(&mut self, _q: &Query, _out: &QueryOutcome) -> Flow {
        self.queries += 1;
        Flow::Continue
    }

    fn on_tuples(&mut self, tuples: &[Tuple]) -> Flow {
        self.tuples += tuples.len() as u64;
        if !self.stall.is_zero() {
            std::thread::sleep(self.stall);
        }
        Flow::Continue
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Telemetry is provably inert: a subscribed observer — even one
    /// slow enough to back-pressure the event channel — never changes
    /// the bag, the charged cost, the tallies, or the per-shard
    /// accounting, solo or sharded. The observer in turn sees every
    /// charged query and every extracted tuple exactly once.
    #[test]
    fn subscribed_observers_are_inert(
        inst in instance_strategy(),
        sessions in 2usize..4,
        slow in any::<bool>(),
    ) {
        prop_assume!(inst.solvable());
        let stall = if slow {
            std::time::Duration::from_micros(300)
        } else {
            std::time::Duration::ZERO
        };

        // Solo: full bit identity, success or failure.
        let unobserved = Crawl::builder().run(&mut inst.server(41));
        let mut tap = SlowTap { queries: 0, tuples: 0, stall };
        let observed = Crawl::builder()
            .observer(&mut tap)
            .run(&mut inst.server(41));
        assert_identical("solo observed vs unobserved", &unobserved, &observed)?;
        if let Ok(report) = &observed {
            prop_assert_eq!(tap.queries, report.queries,
                "solo observer missed charged queries");
            prop_assert_eq!(tap.tuples, report.tuples.len() as u64,
                "solo observer missed tuples");
        }

        // Sharded: events stream live out of the pool workers through
        // the bounded channel; a slow drain must stall the producers,
        // never drop events or perturb the schedule's accounting.
        let base = Crawl::builder()
            .strategy(Strategy::Hybrid)
            .sessions(sessions)
            .oversubscribe(2)
            .run_sharded(|_s| inst.server(41))
            .unwrap();
        let mut tap = SlowTap { queries: 0, tuples: 0, stall };
        let observed = Crawl::builder()
            .strategy(Strategy::Hybrid)
            .sessions(sessions)
            .oversubscribe(2)
            .observer(&mut tap)
            .run_sharded(|_s| inst.server(41))
            .unwrap();

        prop_assert_eq!(observed.merged.queries, base.merged.queries,
            "observer changed the sharded charged cost");
        prop_assert_eq!(&observed.merged.tuples, &base.merged.tuples,
            "observer changed the merged bag");
        prop_assert_eq!(observed.shards.len(), base.shards.len());
        for (sa, sb) in base.shards.iter().zip(&observed.shards) {
            prop_assert_eq!(&sa.spec, &sb.spec, "observer changed the shard plan");
            prop_assert_eq!(sa.report.queries, sb.report.queries,
                "observer changed a shard's charged cost");
            prop_assert_eq!(sa.tuples, sb.tuples,
                "observer changed a shard's tuple count");
        }
        prop_assert_eq!(tap.queries, observed.merged.queries,
            "sharded observer missed charged queries");
        prop_assert_eq!(tap.tuples, observed.merged.tuples.len() as u64,
            "sharded observer missed tuples");
    }
}
