//! Differential suite for distributed crawl coordination — the PR's
//! headline theorems, checked against the deterministic server:
//!
//! 1. **Fleet ≡ solo.** N workers leasing shards from one
//!    [`MemoryLeaseRepository`] (and, separately, over the wire from a
//!    [`Coordinator`]) extract the same bag at the same total charged
//!    query cost as crawling the same plan solo, shard by shard.
//! 2. **Salvage loses nothing and redoes little.** A worker killed
//!    mid-shard — after banking a partial snapshot by heartbeat — loses
//!    its lease; the peer that salvages the shard resumes from the
//!    frontier. The merged bag is exactly the uninterrupted crawl's (no
//!    tuple lost, none double-counted), and the replay charges
//!    *strictly fewer* queries than a whole-shard redo (the suffix may
//!    re-pay slice fetches the prefix shared, but never the prefix
//!    roots' own slices — the accounting honestly records both passes).
//! 3. **Dedup never drops a tuple.** Cross-restart dedup (exact and
//!    Bloom) annotates new-vs-seen counts; the crawled bag is identical
//!    with dedup off, exact, or Bloom, and a re-crawl reports zero new
//!    tuples in both modes (Bloom has no false negatives).
//!
//! Bags are compared as **multisets** ([`TupleBag::multiset_eq`]): the
//! determinism contract fixes each shard's charged query sequence and
//! bag, but fleet merge order (completion order vs plan order) and
//! per-root emission interleaving are scheduling artifacts the cost
//! model and the paper's Problem 1 do not observe.

use std::sync::Mutex;
use std::time::Duration;

use proptest::prelude::*;
use proptest::Strategy as PropStrategy;

use hdc_coord::{
    drive_worker, merge_snapshot, Coordinator, CoordinatorConfig, LeaseDecision, LeaseRepository,
    MemoryLeaseRepository, TupleDedup, WireLeaseRepository, WorkerConfig,
};
use hdc_core::{
    CancelToken, CrawlError, CrawlRepository, ResumableShard, SessionConfig, ShardSpec, Sharded,
};
use hdc_net::http;
use hdc_server::{HiddenDbServer, ServerConfig};
use hdc_types::{AttrKind, Schema, Tuple, TupleBag, Value};

/// A generated test instance (same generator family as the core fault
/// suite).
#[derive(Debug, Clone)]
struct Instance {
    schema: Schema,
    tuples: Vec<Tuple>,
    k: usize,
}

impl Instance {
    fn solvable(&self) -> bool {
        TupleBag::from_tuples(self.tuples.iter().cloned()).max_multiplicity() <= self.k
    }

    fn server(&self, seed: u64) -> HiddenDbServer {
        HiddenDbServer::new(
            self.schema.clone(),
            self.tuples.clone(),
            ServerConfig { k: self.k, seed },
        )
        .unwrap()
    }
}

fn xorshift(mut state: u64) -> impl FnMut() -> u64 {
    state |= 1;
    move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

fn instance_strategy() -> impl PropStrategy<Value = Instance> {
    (
        proptest::collection::vec((any::<bool>(), 2u32..6, 1i64..20), 1..4),
        3usize..10,
        0usize..100,
        any::<u64>(),
    )
        .prop_map(|(attrs, k, n, seed)| {
            let mut builder = Schema::builder();
            let mut kinds = Vec::new();
            for (i, &(is_cat, u, w)) in attrs.iter().enumerate() {
                if is_cat {
                    builder = builder.categorical(format!("c{i}"), u);
                    kinds.push(AttrKind::Categorical { size: u });
                } else {
                    builder = builder.numeric(format!("n{i}"), -w, w);
                    kinds.push(AttrKind::Numeric { min: -w, max: w });
                }
            }
            let schema = builder.build().unwrap();
            let mut next = xorshift(seed);
            let tuples: Vec<Tuple> = (0..n)
                .map(|_| {
                    Tuple::new(
                        kinds
                            .iter()
                            .map(|&kind| match kind {
                                AttrKind::Categorical { size } => {
                                    Value::Cat((next() % u64::from(size)) as u32)
                                }
                                AttrKind::Numeric { min, max } => {
                                    let span = (max - min + 1) as u64;
                                    Value::Int(min + (next() % span) as i64)
                                }
                            })
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            Instance { schema, tuples, k }
        })
}

/// The fixed multi-root instance the deterministic kill/salvage tests
/// use: 5 "make" values × numeric "price", plan of 2 shards with 3 and
/// 2 root values each.
fn yahoo_like() -> Instance {
    let schema = Schema::builder()
        .categorical("make", 5)
        .numeric("price", 0, 199)
        .build()
        .unwrap();
    let mut next = xorshift(0xfeed);
    let tuples: Vec<Tuple> = (0..300)
        .map(|_| {
            Tuple::new(vec![
                Value::Cat((next() % 5) as u32),
                Value::Int((next() % 200) as i64),
            ])
        })
        .collect();
    Instance {
        schema,
        tuples,
        k: 10,
    }
}

fn bag(tuples: &[Tuple]) -> TupleBag {
    TupleBag::from_tuples(tuples.iter().cloned())
}

/// The solo baseline: every shard of the plan crawled one-call on a
/// single connection; total charged queries + merged bag.
fn solo(plan: &[ShardSpec], inst: &Instance, seed: u64) -> (u64, TupleBag) {
    let mut db = inst.server(seed);
    let mut queries = 0;
    let mut tuples = Vec::new();
    for spec in plan {
        let report = spec.crawl(&mut db, &inst.schema).unwrap();
        queries += report.queries;
        tuples.extend(report.tuples);
    }
    (queries, bag(&tuples))
}

/// Totals from a drained lease repository's checkpoint.
fn fleet_totals(repo: &MemoryLeaseRepository) -> (u64, TupleBag) {
    let cp = repo.checkpoint();
    let mut queries = 0;
    let mut tuples = Vec::new();
    for snap in &cp.shards {
        assert!(snap.is_complete(), "drained fleet left partial shard");
        queries += snap.queries;
        tuples.extend(snap.tuples.iter().cloned());
    }
    (queries, bag(&tuples))
}

/// Runs `workers` in-process workers to drain `repo`, each on its own
/// (identically seeded, hence identically answering) server.
fn run_fleet(repo: &MemoryLeaseRepository, inst: &Instance, seed: u64, workers: usize) {
    std::thread::scope(|scope| {
        for w in 0..workers {
            let mut repo = repo.clone();
            let inst = inst.clone();
            scope.spawn(move || {
                let mut db = inst.server(seed);
                let cfg = WorkerConfig {
                    name: format!("w{w}"),
                    wait_cap_ms: 10,
                    ..WorkerConfig::default()
                };
                drive_worker(&mut repo, &mut db, &inst.schema, &cfg).unwrap();
            });
        }
    });
}

fn signatures(plan: &[ShardSpec]) -> Vec<String> {
    plan.iter().map(ShardSpec::signature).collect()
}

// ---------------------------------------------------------------------
// Theorem 1a: per-root resumable crawl ≡ one-call crawl, and plan
// signatures round-trip through parse.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn resumable_crawl_matches_one_call(inst in instance_strategy(), seed in any::<u64>()) {
        prop_assume!(inst.solvable());
        let plan = Sharded::plan_oversubscribed(&inst.schema, 2, 2);
        for spec in &plan {
            let reparsed = ShardSpec::parse_signature(&spec.signature());
            prop_assert_eq!(reparsed.as_ref(), Some(spec), "signature must round-trip");
            let mut db_a = inst.server(seed);
            let one_call = spec.crawl(&mut db_a, &inst.schema).unwrap();
            let mut db_b = inst.server(seed);
            let mut roots = 0;
            let per_root = spec
                .crawl_resumable_configured(
                    &mut db_b,
                    &inst.schema,
                    SessionConfig::default(),
                    |done, _| roots = done,
                )
                .unwrap();
            prop_assert_eq!(one_call.queries, per_root.queries);
            prop_assert_eq!(one_call.resolved, per_root.resolved);
            prop_assert_eq!(one_call.overflowed, per_root.overflowed);
            prop_assert_eq!(one_call.pruned, per_root.pruned);
            prop_assert!(bag(&one_call.tuples).multiset_eq(&bag(&per_root.tuples)));
            if let Some(points) = spec.resume_points() {
                prop_assert_eq!(roots as usize, points, "one callback per root value");
            }
        }
    }

    // -----------------------------------------------------------------
    // Theorem 2a: prefix (banked partial) + suffix (resume) ≡ whole, at
    // every cursor — and the suffix replay is strictly cheaper whenever
    // the prefix charged anything.
    // -----------------------------------------------------------------

    #[test]
    fn partial_resume_merges_exactly(inst in instance_strategy(), seed in any::<u64>()) {
        prop_assume!(inst.solvable());
        let plan = Sharded::plan_oversubscribed(&inst.schema, 1, 2);
        for spec in &plan {
            let Some(points) = spec.resume_points() else { continue };
            if points < 2 {
                continue;
            }
            let mut db = inst.server(seed);
            let whole = spec.crawl(&mut db, &inst.schema).unwrap();
            for cursor in 1..points {
                // Bank the partial the worker would heartbeat at `cursor`.
                let mut banked = None;
                let mut db_p = inst.server(seed);
                spec.crawl_resumable_configured(
                    &mut db_p,
                    &inst.schema,
                    SessionConfig::default(),
                    |done, interim| {
                        if done as usize == cursor {
                            banked = Some(merge_snapshot(0, None, interim, Some(done)));
                        }
                    },
                )
                .unwrap();
                let partial = banked.expect("cursor < points, callback must fire");
                // Salvage: crawl only the suffix, merge.
                let suffix_spec = spec.resume_suffix(cursor).unwrap();
                let mut db_s = inst.server(seed);
                let suffix = suffix_spec.crawl(&mut db_s, &inst.schema).unwrap();
                let merged = merge_snapshot(0, Some(&partial), &suffix, None);
                // Bag additivity is exact: root values partition the bag.
                prop_assert!(bag(&merged.tuples).multiset_eq(&bag(&whole.tuples)));
                // The merged accounting is the honest sum of both passes.
                prop_assert_eq!(merged.queries, partial.queries + suffix.queries);
                // Cost: the suffix may re-pay slice fetches the prefix
                // shared with it (the slice table memoizes per-session),
                // so the sum can exceed the uninterrupted whole — but
                // each prefix root's own slice fetch is never re-paid,
                // so the replay is strictly cheaper than a redo.
                prop_assert!(
                    merged.queries >= whole.queries,
                    "merged spend cannot undercut the uninterrupted crawl"
                );
                prop_assert!(
                    suffix.queries < whole.queries,
                    "salvage must replay strictly fewer queries than a whole-shard redo"
                );
            }
        }
    }

    // -----------------------------------------------------------------
    // Theorem 1b: the in-process fleet ≡ solo, bag and total cost.
    // -----------------------------------------------------------------

    #[test]
    fn fleet_matches_solo_bag_and_cost(
        inst in instance_strategy(),
        seed in any::<u64>(),
        workers in 1usize..4,
    ) {
        prop_assume!(inst.solvable());
        let plan = Sharded::plan_oversubscribed(&inst.schema, 2, 2);
        let (solo_queries, solo_bag) = solo(&plan, &inst, seed);
        let repo = MemoryLeaseRepository::new(signatures(&plan), Duration::from_secs(60));
        run_fleet(&repo, &inst, seed, workers);
        prop_assert!(repo.is_drained());
        let (fleet_queries, fleet_bag) = fleet_totals(&repo);
        prop_assert_eq!(fleet_queries, solo_queries, "fleet must charge exactly solo's cost");
        prop_assert!(fleet_bag.multiset_eq(&solo_bag), "fleet bag must equal solo bag");
    }
}

// ---------------------------------------------------------------------
// Theorem 2b: kill a worker mid-shard → lease expiry → peer salvage,
// exactly equal to the uninterrupted crawl, with a strictly cheaper
// replay than a whole-shard redo.
// ---------------------------------------------------------------------

#[test]
fn killed_worker_is_salvaged_exactly() {
    let inst = yahoo_like();
    let seed = 11;
    let plan = Sharded::plan_oversubscribed(&inst.schema, 1, 2);
    assert!(plan.len() >= 2 && plan[0].resume_points().unwrap() >= 2);
    let (solo_queries, solo_bag) = solo(&plan, &inst, seed);
    let whole_shard0 = {
        let mut db = inst.server(seed);
        plan[0].crawl(&mut db, &inst.schema).unwrap()
    };

    let mut repo = MemoryLeaseRepository::new(signatures(&plan), Duration::from_secs(60));

    // Worker A leases shard 0, banks one root by heartbeat, then dies.
    let grant = match repo.lease("doomed").unwrap() {
        LeaseDecision::Grant(g) => *g,
        other => panic!("expected grant, got {other:?}"),
    };
    assert_eq!(grant.index, 0);
    let spec = ShardSpec::parse_signature(&grant.signature).unwrap();
    let halt = CancelToken::new();
    let mut banked_queries = 0;
    {
        let repo_cell = Mutex::new(repo.clone());
        let result = spec.crawl_resumable_configured(
            &mut inst.server(seed),
            &inst.schema,
            SessionConfig {
                cancel: Some(&halt),
                ..SessionConfig::default()
            },
            |done, interim| {
                if done == 1 {
                    let partial = merge_snapshot(grant.index, None, interim, Some(1));
                    banked_queries = partial.queries;
                    assert!(repo_cell
                        .lock()
                        .unwrap()
                        .heartbeat(grant.index, grant.lease, Some(&partial))
                        .unwrap());
                    halt.cancel(); // the crash
                }
            },
        );
        assert!(matches!(result, Err(CrawlError::Stopped { .. })));
    }
    assert!(banked_queries > 0, "first root must have charged queries");

    // The deadline lapses; the shard is reclaimed with the banked partial.
    assert_eq!(repo.expire_leases_now(), 1);

    // Worker B drains the plan, salvaging shard 0 from the frontier.
    let mut db_b = inst.server(seed);
    let cfg = WorkerConfig {
        name: "survivor".into(),
        wait_cap_ms: 10,
        ..WorkerConfig::default()
    };
    let mut repo_b = repo.clone();
    let report_b = drive_worker(&mut repo_b, &mut db_b, &inst.schema, &cfg).unwrap();
    assert_eq!(report_b.shards_resumed, 1, "shard 0 must be resumed, not redone");
    assert!(repo.is_drained());

    // Exactness: no tuple lost, none double-counted — the salvaged
    // fleet's bag is the uninterrupted solo bag. The charged total may
    // exceed solo's by the slice fetches the suffix re-paid (honest
    // accounting of the crash), but never undercuts it.
    let (fleet_queries, fleet_bag) = fleet_totals(&repo);
    assert!(fleet_bag.multiset_eq(&solo_bag));
    assert!(fleet_queries >= solo_queries);

    // The salvage replayed only the suffix: strictly fewer queries than
    // a whole-shard redo.
    let salvaged = repo
        .checkpoint()
        .shards
        .iter()
        .find(|s| s.index == 0)
        .cloned()
        .unwrap();
    let replayed = salvaged.queries - banked_queries;
    assert!(
        replayed < whole_shard0.queries,
        "salvage replayed {replayed} vs whole-shard {}",
        whole_shard0.queries
    );
    let (_, expired, salvaged_grants) = repo.fleet_stats();
    assert_eq!((expired, salvaged_grants), (1, 1));
}

// ---------------------------------------------------------------------
// Theorem 3: dedup (exact and Bloom) never changes the bag, and a
// re-crawl reports zero new tuples in both modes.
// ---------------------------------------------------------------------

#[test]
fn dedup_annotates_without_dropping_tuples() {
    let inst = yahoo_like();
    let seed = 23;
    let plan = Sharded::plan_oversubscribed(&inst.schema, 1, 2);
    let sigs = signatures(&plan);
    let (_, solo_bag) = solo(&plan, &inst, seed);
    let distinct = {
        let mut d = TupleDedup::exact();
        inst.tuples.iter().filter(|t| d.insert(t)).count() as u64
    };

    let mut carried: Vec<(String, TupleDedup)> = Vec::new();
    for (label, dedup) in [
        ("exact", TupleDedup::exact()),
        ("bloom", TupleDedup::bloom(1024, 7)),
    ] {
        let repo =
            MemoryLeaseRepository::new(sigs.clone(), Duration::from_secs(60)).with_dedup(dedup);
        run_fleet(&repo, &inst, seed, 2);
        let (_, fleet_bag) = fleet_totals(&repo);
        assert!(
            fleet_bag.multiset_eq(&solo_bag),
            "{label}: dedup must never drop a tuple from the bag"
        );
        let (stats, _, _) = repo.fleet_stats();
        assert!(
            stats.new <= distinct,
            "{label}: new count {} cannot exceed distinct {}",
            stats.new,
            distinct
        );
        if label == "exact" {
            assert_eq!(stats.new, distinct, "exact mode counts every distinct tuple");
        }
        carried.push((
            label.to_string(),
            TupleDedup::from_text(&repo.dedup_text().unwrap()).unwrap(),
        ));
    }

    // Re-crawl with carried-over dedup state: everything was seen, so
    // both modes must report zero new (Bloom has no false negatives).
    for (label, dedup) in carried {
        let repo =
            MemoryLeaseRepository::new(sigs.clone(), Duration::from_secs(60)).with_dedup(dedup);
        run_fleet(&repo, &inst, seed, 2);
        let (_, fleet_bag) = fleet_totals(&repo);
        assert!(fleet_bag.multiset_eq(&solo_bag), "{label}: re-crawl bag intact");
        let (stats, _, _) = repo.fleet_stats();
        assert_eq!(
            stats.new, 0,
            "{label}: re-crawl of known tuples must report zero new"
        );
    }
}

// ---------------------------------------------------------------------
// Theorem 1c: the same fleet over the wire — workers speaking HTTP to a
// Coordinator — is still exactly solo, and the coordinator trips its
// drain token when the last shard lands.
// ---------------------------------------------------------------------

/// A minimal HTTP host for a [`Coordinator`]: one request per
/// connection, coordination endpoints only. (The production host is
/// `hdc serve --coordinate`, where the same [`hdc_net::RouteExt`] hook
/// shares the listener with the data endpoints; the CI fleet-loopback
/// job exercises that path end to end.)
fn host_coordinator(
    coordinator: std::sync::Arc<Coordinator>,
) -> (String, std::sync::Arc<std::sync::atomic::AtomicBool>) {
    use hdc_net::RouteExt;
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop_flag = stop.clone();
    listener.set_nonblocking(true).unwrap();
    std::thread::spawn(move || loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).unwrap();
                let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
                let Ok(Some(req)) = http::read_request(&mut reader) else {
                    continue;
                };
                let resp = coordinator.handle(&req).unwrap_or(http::Response {
                    status: 404,
                    body: b"not found".to_vec(),
                    content_type: "text/plain; charset=utf-8",
                });
                let mut stream = stream;
                let _ = http::write_response(&mut stream, &resp, true);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if stop_flag.load(std::sync::atomic::Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return,
        }
    });
    (addr, stop)
}

#[test]
fn wire_fleet_matches_solo() {
    let inst = yahoo_like();
    let seed = 31;
    let plan = Sharded::plan_oversubscribed(&inst.schema, 2, 2);
    let total = plan.len();
    let (solo_queries, solo_bag) = solo(&plan, &inst, seed);

    let (coordinator, _) = Coordinator::new(
        signatures(&plan),
        CoordinatorConfig {
            ttl: Duration::from_secs(60),
            ..CoordinatorConfig::default()
        },
    )
    .unwrap();
    let coordinator = std::sync::Arc::new(coordinator);
    let (addr, stop) = host_coordinator(coordinator.clone());

    std::thread::scope(|scope| {
        for w in 0..2 {
            let inst = inst.clone();
            let addr = addr.clone();
            scope.spawn(move || {
                let mut repo = WireLeaseRepository::connect(&format!("http://{addr}")).unwrap();
                assert_eq!(repo.plan().unwrap().len(), total);
                let mut db = inst.server(seed);
                let cfg = WorkerConfig {
                    name: format!("wire-{w}"),
                    wait_cap_ms: 10,
                    ..WorkerConfig::default()
                };
                drive_worker(&mut repo, &mut db, &inst.schema, &cfg).unwrap();
            });
        }
    });

    assert!(coordinator.is_drained());
    assert!(
        coordinator.drained_token().is_cancelled(),
        "drain must trip the serve-loop token"
    );
    let outcome = coordinator.outcome();
    assert_eq!(outcome.queries, solo_queries, "wire fleet cost ≡ solo exactly");
    assert_eq!(outcome.shards, (total, total));
    let cp = coordinator.checkpoint();
    let tuples: Vec<Tuple> = cp.shards.iter().flat_map(|s| s.tuples.clone()).collect();
    assert!(bag(&tuples).multiset_eq(&solo_bag));

    // The wire checkpoint endpoint serves the same state.
    let mut client = WireLeaseRepository::connect(&format!("http://{addr}")).unwrap();
    let served = client.load().unwrap().unwrap();
    assert_eq!(served.shards.len(), total);
    assert!(matches!(
        client.lease("latecomer").unwrap(),
        LeaseDecision::Drained
    ));
    stop.store(true, std::sync::atomic::Ordering::Release);
}
