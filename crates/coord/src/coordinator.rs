//! The wire-served coordinator: a [`RouteExt`] that mounts the
//! [`LeaseRepository`] contract on the data server's HTTP listener
//! (`hdc serve --coordinate`), with optional checkpoint persistence and
//! cross-restart dedup.
//!
//! # Wire protocol
//!
//! Plain-text framing on four endpoints, with checkpoint JSON (the
//! established on-disk format) as the payload wherever a snapshot
//! travels — every carried checkpoint embeds the full plan, so each
//! message re-validates the plan fingerprint for free:
//!
//! | request | body | response |
//! |---|---|---|
//! | `POST /lease` | worker name | `grant <index> <lease> <ttl_ms>` (+ `\n` + partial-snapshot checkpoint JSON), `wait <ms>`, or `drained` |
//! | `POST /heartbeat` | `<index> <lease>` (+ `\n` + partial checkpoint) | `ok` or `lost` |
//! | `POST /complete` | `<index> <lease>` + `\n` + complete checkpoint | `ok <new_tuples>` or `lost`; `409 mismatch: …` on plan mismatch |
//! | `GET /plan` | — | `hdc-coord v1 <ttl_ms> <total> <done>` + one signature per line |
//! | `GET /checkpoint` | — | accumulated checkpoint JSON |
//!
//! The coordinator never issues data queries: leases and heartbeats are
//! pure control traffic, so a wire-leased fleet's charged query cost is
//! exactly the solo crawl's.

use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use hdc_core::{CancelToken, CrawlCheckpoint, CrawlRepository, JsonFileRepository, ShardSnapshot};
use hdc_net::http::{Request, Response};
use hdc_net::RouteExt;

use crate::bloom::{DedupStats, TupleDedup};
use crate::lease::{LeaseDecision, LeaseRepository, MemoryLeaseRepository};

/// How a coordinator came up relative to its persisted checkpoint.
#[derive(Clone, Debug)]
pub enum Restore {
    /// No checkpoint file (or persistence off): fresh plan.
    Fresh,
    /// Checkpoint absorbed: this many shards were already complete.
    Resumed {
        /// Complete shards restored from disk.
        complete: usize,
    },
    /// The checkpoint belongs to a different plan. The fleet starts
    /// fresh and **persistence is disabled** so the foreign checkpoint
    /// file is preserved; the message carries the typed
    /// [`hdc_core::RepositoryError::PlanMismatch`] remediation text.
    Mismatch {
        /// The plan-mismatch explanation for the operator.
        message: String,
    },
}

/// Configuration for [`Coordinator::new`].
pub struct CoordinatorConfig {
    /// Lease TTL: how long a worker may go between heartbeats.
    pub ttl: Duration,
    /// Checkpoint file for crash-restart persistence (the dedup sidecar
    /// lives at the same path + `.seen`).
    pub checkpoint: Option<PathBuf>,
    /// Cross-restart tuple dedup, if any.
    pub dedup: Option<TupleDedup>,
    /// Log lease traffic to stderr.
    pub verbose: bool,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            ttl: Duration::from_secs(30),
            checkpoint: None,
            dedup: None,
            verbose: false,
        }
    }
}

/// Fleet summary for the operator once the plan drains.
#[derive(Clone, Debug)]
pub struct FleetOutcome {
    /// Tuples across all complete shards (bag cardinality).
    pub tuples: u64,
    /// Total charged queries across all complete shards.
    pub queries: u64,
    /// Complete / total shard counts.
    pub shards: (usize, usize),
    /// Dedup tallies (zeros when dedup is off).
    pub dedup: DedupStats,
    /// Leases that expired and were reclaimed.
    pub expired_leases: u64,
    /// Grants that carried a salvaged partial snapshot.
    pub salvaged_grants: u64,
    /// First persistence failure, if any (the crawl itself is
    /// unaffected; only resumability degraded).
    pub persist_error: Option<String>,
}

/// Wire-serving face of a [`MemoryLeaseRepository`]: translate HTTP
/// requests into lease verbs, persist after every state change, and
/// trip a [`CancelToken`] when the plan drains so `hdc serve
/// --coordinate` can shut itself down.
pub struct Coordinator {
    repo: MemoryLeaseRepository,
    persist: Mutex<Option<JsonFileRepository>>,
    seen_path: Option<PathBuf>,
    persist_error: Mutex<Option<String>>,
    drained: Arc<CancelToken>,
    verbose: bool,
}

impl Coordinator {
    /// Builds a coordinator over `plan` (shard signatures in plan
    /// order). When `cfg.checkpoint` names an existing compatible
    /// checkpoint, completed shards and salvageable partials are
    /// restored (and the `.seen` dedup sidecar reloaded); a checkpoint
    /// for a *different* plan yields [`Restore::Mismatch`] — fleet
    /// proceeds fresh, persistence disabled, nothing aborted.
    pub fn new(plan: Vec<String>, cfg: CoordinatorConfig) -> io::Result<(Self, Restore)> {
        let mut dedup = cfg.dedup;
        let seen_path = cfg
            .checkpoint
            .as_ref()
            .map(|p| PathBuf::from(format!("{}.seen", p.display())));
        if let (Some(path), Some(_)) = (&seen_path, &dedup) {
            match std::fs::read_to_string(path) {
                Ok(text) => dedup = Some(TupleDedup::from_text(&text)?),
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        let mut repo = MemoryLeaseRepository::new(plan, cfg.ttl);
        if let Some(d) = dedup {
            repo = repo.with_dedup(d);
        }
        let mut restore = Restore::Fresh;
        let mut persist = None;
        if let Some(path) = cfg.checkpoint {
            let mut file_repo = JsonFileRepository::new(&path);
            match file_repo.load()? {
                Some(cp) => match repo.store(&cp) {
                    Ok(()) => {
                        restore = Restore::Resumed {
                            complete: repo.progress().0,
                        };
                        persist = Some(file_repo);
                    }
                    Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                        restore = Restore::Mismatch {
                            message: e.to_string(),
                        };
                        // Leave `persist` None: never overwrite a
                        // checkpoint that belongs to another plan.
                    }
                    Err(e) => return Err(e),
                },
                None => persist = Some(file_repo),
            }
        }
        let coordinator = Coordinator {
            repo,
            persist: Mutex::new(persist),
            seen_path,
            persist_error: Mutex::new(None),
            drained: Arc::new(CancelToken::new()),
            verbose: cfg.verbose,
        };
        // A checkpoint can restore the plan already fully complete; no
        // `complete()` will ever arrive, so trip the token now or the
        // serving process would wait forever.
        if coordinator.repo.is_drained() {
            coordinator.drained.cancel();
        }
        Ok((coordinator, restore))
    }

    /// The shared lease repository — hand clones to in-process workers.
    pub fn repo(&self) -> MemoryLeaseRepository {
        self.repo.clone()
    }

    /// Token tripped when the last shard completes; `hdc serve
    /// --coordinate` passes it to the accept loop so the process drains
    /// itself.
    pub fn drained_token(&self) -> Arc<CancelToken> {
        Arc::clone(&self.drained)
    }

    /// Whether every shard has completed.
    pub fn is_drained(&self) -> bool {
        self.repo.is_drained()
    }

    /// The merged bag in plan order plus summary counters — for the
    /// operator's final verification line.
    pub fn outcome(&self) -> FleetOutcome {
        let cp = self.repo.checkpoint();
        let (complete, total) = self.repo.progress();
        let (dedup, expired, salvaged) = self.repo.fleet_stats();
        FleetOutcome {
            tuples: cp
                .shards
                .iter()
                .filter(|s| s.is_complete())
                .map(|s| s.tuples.len() as u64)
                .sum(),
            queries: cp
                .shards
                .iter()
                .filter(|s| s.is_complete())
                .map(|s| s.queries)
                .sum(),
            shards: (complete, total),
            dedup,
            expired_leases: expired,
            salvaged_grants: salvaged,
            persist_error: self.persist_error.lock().expect("persist error lock").clone(),
        }
    }

    /// The accumulated checkpoint (complete shards + best partials).
    pub fn checkpoint(&self) -> CrawlCheckpoint {
        self.repo.checkpoint()
    }

    /// Writes checkpoint + dedup sidecar. Failures are recorded (first
    /// one wins) and surfaced via [`Coordinator::outcome`] instead of
    /// failing the in-flight request: the crawl is correct either way,
    /// only crash-resumability degrades — same policy as the solo
    /// checkpointed crawl.
    fn persist(&self) {
        let result = self.try_persist();
        if let Err(e) = result {
            let mut slot = self.persist_error.lock().expect("persist error lock");
            if slot.is_none() {
                *slot = Some(e.to_string());
            }
        }
    }

    fn try_persist(&self) -> io::Result<()> {
        let mut guard = self.persist.lock().expect("persist lock");
        let Some(file_repo) = guard.as_mut() else {
            return Ok(());
        };
        file_repo.store(&self.repo.checkpoint())?;
        if let (Some(path), Some(text)) = (&self.seen_path, self.repo.dedup_text()) {
            let tmp = path.with_extension("seen.tmp");
            std::fs::write(&tmp, text)?;
            std::fs::rename(&tmp, path)?;
        }
        Ok(())
    }

    fn log(&self, line: std::fmt::Arguments<'_>) {
        if self.verbose {
            eprintln!("coord: {line}");
        }
    }

    /// Parses `<index> <lease>` followed by an optional newline +
    /// checkpoint JSON; validates any carried snapshot against the
    /// coordinator's plan.
    fn parse_verb(&self, body: &[u8]) -> Result<(usize, u64, Option<ShardSnapshot>), Response> {
        let text = std::str::from_utf8(body)
            .map_err(|_| text_response(400, "body is not UTF-8".into()))?;
        let (head, rest) = match text.split_once('\n') {
            Some((h, r)) => (h, r.trim()),
            None => (text.trim(), ""),
        };
        let mut fields = head.split_whitespace();
        let (index, lease) = match (
            fields.next().and_then(|s| s.parse::<usize>().ok()),
            fields.next().and_then(|s| s.parse::<u64>().ok()),
        ) {
            (Some(i), Some(l)) => (i, l),
            _ => return Err(text_response(400, format!("bad verb line {head:?}"))),
        };
        if rest.is_empty() {
            return Ok((index, lease, None));
        }
        let cp = CrawlCheckpoint::from_json(rest)
            .map_err(|e| text_response(400, format!("bad snapshot payload: {e}")))?;
        let plan = self.repo.checkpoint().plan;
        if let Err(e) = cp.verify_plan(&plan) {
            return Err(text_response(409, format!("mismatch: {e}")));
        }
        let mut shards = cp.shards;
        if shards.len() != 1 {
            return Err(text_response(
                400,
                format!("expected exactly one snapshot, got {}", shards.len()),
            ));
        }
        Ok((index, lease, Some(shards.remove(0))))
    }

    fn lease_response(&self, req: &Request) -> Response {
        let worker = String::from_utf8_lossy(&req.body).trim().to_string();
        let name = if worker.is_empty() { "worker" } else { &worker };
        let mut repo = self.repo.clone();
        match repo.lease(name) {
            Ok(LeaseDecision::Grant(g)) => {
                self.log(format_args!(
                    "lease {} -> shard {} (lease {}, cursor {:?})",
                    name,
                    g.index,
                    g.lease,
                    g.partial.as_ref().and_then(|p| p.frontier)
                ));
                let mut body = format!("grant {} {} {}\n", g.index, g.lease, g.ttl_ms);
                if let Some(p) = g.partial {
                    let mut cp = CrawlCheckpoint::new(self.repo.checkpoint().plan);
                    cp.shards.push(p);
                    body.push_str(&cp.to_json());
                }
                text_response(200, body)
            }
            Ok(LeaseDecision::Wait { retry_ms }) => text_response(200, format!("wait {retry_ms}\n")),
            Ok(LeaseDecision::Drained) => text_response(200, "drained\n".into()),
            Err(e) => text_response(500, format!("lease failed: {e}")),
        }
    }

    fn heartbeat_response(&self, req: &Request) -> Response {
        let (index, lease, partial) = match self.parse_verb(&req.body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        if let Some(p) = &partial {
            if p.is_complete() {
                return text_response(400, "heartbeat snapshot must be partial".into());
            }
        }
        let mut repo = self.repo.clone();
        match repo.heartbeat(index, lease, partial.as_ref()) {
            Ok(true) => {
                if partial.is_some() {
                    self.persist();
                }
                text_response(200, "ok\n".into())
            }
            Ok(false) => {
                self.log(format_args!("heartbeat on lost lease {lease} (shard {index})"));
                text_response(200, "lost\n".into())
            }
            Err(e) => text_response(400, format!("heartbeat failed: {e}")),
        }
    }

    fn complete_response(&self, req: &Request) -> Response {
        let (index, lease, snapshot) = match self.parse_verb(&req.body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let Some(snapshot) = snapshot else {
            return text_response(400, "complete requires a snapshot".into());
        };
        let mut repo = self.repo.clone();
        match repo.complete(index, lease, snapshot) {
            Ok(Some(new)) => {
                self.persist();
                let (done, total) = self.repo.progress();
                self.log(format_args!("shard {index} complete ({done}/{total})"));
                if done == total {
                    self.log(format_args!("plan drained"));
                    self.drained.cancel();
                }
                text_response(200, format!("ok {new}\n"))
            }
            Ok(None) => {
                self.log(format_args!("stale completion for shard {index} discarded"));
                text_response(200, "lost\n".into())
            }
            Err(e) => text_response(400, format!("complete failed: {e}")),
        }
    }

    fn plan_response(&self) -> Response {
        let plan = self.repo.checkpoint().plan;
        let (done, total) = self.repo.progress();
        let mut body = format!("hdc-coord v1 {} {} {}\n", self.repo.ttl_ms(), total, done);
        for sig in &plan {
            body.push_str(sig);
            body.push('\n');
        }
        text_response(200, body)
    }
}

impl RouteExt for Coordinator {
    fn handle(&self, req: &Request) -> Option<Response> {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/lease") => Some(self.lease_response(req)),
            ("POST", "/heartbeat") => Some(self.heartbeat_response(req)),
            ("POST", "/complete") => Some(self.complete_response(req)),
            ("GET", "/plan") => Some(self.plan_response()),
            ("GET", "/checkpoint") => Some(Response::json(
                200,
                self.repo.checkpoint().to_json().into_bytes(),
            )),
            _ => None,
        }
    }
}

/// A plain-text response (the coordination protocol's framing; data
/// endpoints stay JSON).
fn text_response(status: u16, body: String) -> Response {
    Response {
        status,
        body: body.into_bytes(),
        content_type: "text/plain; charset=utf-8",
    }
}
