//! Cross-restart tuple dedup: an exact key set or a seeded double-hash
//! Bloom filter, both persistable to a small text file beside the
//! checkpoint.
//!
//! Dedup answers one question for repeated or incremental crawls: *of
//! the tuples this shard just delivered, how many had never been seen
//! across any previous run?* The answer is an **annotation** — the
//! crawled bag stays exact in the checkpoint regardless of mode, so a
//! Bloom false positive can only under-count the "new" tally, never
//! drop a tuple from the result (the `fleet_equiv` suite cross-checks
//! Bloom against exact mode).
//!
//! The filter is dependency-free: double hashing (`h1 + i·h2` over `k`
//! probes, Kirsch–Mitzenmacher) on top of two seeded FNV-1a streams.
//! Seeding makes runs reproducible and lets tests pick adversarial
//! seeds.

use std::collections::HashSet;
use std::io;

use hdc_types::{Tuple, Value};

/// Bits reserved per expected item — ~0.8% false-positive rate at the
/// matching probe count ([`BLOOM_PROBES`]).
const BLOOM_BITS_PER_ITEM: u64 = 10;
/// Number of double-hash probes per key (`k ≈ m/n · ln 2`).
const BLOOM_PROBES: u32 = 7;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Seeded FNV-1a over `key`, with the seed folded into the offset basis.
fn fnv1a(seed: u64, key: &[u8]) -> u64 {
    let mut h = FNV_OFFSET ^ seed;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche (splitmix64 tail) — FNV alone clusters on short,
    // similar keys like encoded tuples.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A seeded double-hash Bloom filter over byte keys.
///
/// No false negatives ever: a key that was inserted is always reported
/// present. False positives happen at a rate set by the bits-per-item
/// sizing (~0.8% at the defaults).
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    /// Filter width in bits (`bits.len() * 64`).
    m: u64,
    probes: u32,
    seed: u64,
    items: u64,
}

impl BloomFilter {
    /// A filter sized for `expected` items at ~0.8% false positives.
    /// `seed` perturbs both hash streams, so distinct seeds give
    /// independent filters over the same keys.
    pub fn with_capacity(expected: u64, seed: u64) -> Self {
        let m = (expected.max(1) * BLOOM_BITS_PER_ITEM).next_multiple_of(64);
        BloomFilter {
            bits: vec![0; (m / 64) as usize],
            m,
            probes: BLOOM_PROBES,
            seed,
            items: 0,
        }
    }

    fn probe_bits(&self, key: &[u8]) -> impl Iterator<Item = u64> + '_ {
        let h1 = fnv1a(self.seed, key);
        // `| 1` keeps the stride odd so probes never collapse onto one
        // bit even when h2 divides m.
        let h2 = fnv1a(self.seed.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15, key) | 1;
        let m = self.m;
        (0..u64::from(self.probes)).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % m)
    }

    /// Whether `key` is *possibly* present (definitely absent on
    /// `false`).
    pub fn contains(&self, key: &[u8]) -> bool {
        self.probe_bits(key)
            .all(|b| self.bits[(b / 64) as usize] & (1 << (b % 64)) != 0)
    }

    /// Inserts `key`; returns `true` when it was (possibly) new — i.e.
    /// at least one probe bit was previously unset.
    pub fn insert(&mut self, key: &[u8]) -> bool {
        let mut fresh = false;
        let probes: Vec<u64> = self.probe_bits(key).collect();
        for b in probes {
            let word = &mut self.bits[(b / 64) as usize];
            let mask = 1 << (b % 64);
            if *word & mask == 0 {
                fresh = true;
                *word |= mask;
            }
        }
        if fresh {
            self.items += 1;
        }
        fresh
    }

    /// Distinct keys inserted (first sightings only).
    pub fn items(&self) -> u64 {
        self.items
    }
}

/// New-vs-seen tallies accumulated by a [`TupleDedup`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// Tuples never seen before across any absorbed run.
    pub new: u64,
    /// Tuples recognized from an earlier sighting (including earlier in
    /// the same run — bag multiplicity counts here too).
    pub seen: u64,
}

/// Cross-restart tuple dedup in one of two modes: an exact key set
/// (ground truth, memory ∝ distinct tuples) or a [`BloomFilter`]
/// (constant memory, small false-positive rate that can only
/// *under*-count "new").
#[derive(Clone, Debug)]
pub enum TupleDedup {
    /// Exact mode: every distinct tuple key retained.
    Exact(HashSet<String>),
    /// Bloom mode: constant-space approximate membership.
    Bloom(BloomFilter),
}

impl TupleDedup {
    /// Exact-mode dedup (the fallback when memory allows).
    pub fn exact() -> Self {
        TupleDedup::Exact(HashSet::new())
    }

    /// Bloom-mode dedup sized for `expected` distinct tuples.
    pub fn bloom(expected: u64, seed: u64) -> Self {
        TupleDedup::Bloom(BloomFilter::with_capacity(expected, seed))
    }

    /// The canonical persistence key for a tuple: value-kind-tagged
    /// decimal fields, `;`-joined — unambiguous, newline-free, and
    /// stable across runs.
    pub fn key(tuple: &Tuple) -> String {
        let mut s = String::new();
        for v in tuple.values() {
            match v {
                Value::Cat(c) => {
                    s.push('c');
                    s.push_str(&c.to_string());
                }
                Value::Int(i) => {
                    s.push('i');
                    s.push_str(&i.to_string());
                }
            }
            s.push(';');
        }
        s
    }

    /// Inserts a tuple; `true` when it was new (never seen before).
    pub fn insert(&mut self, tuple: &Tuple) -> bool {
        let key = TupleDedup::key(tuple);
        match self {
            TupleDedup::Exact(set) => set.insert(key),
            TupleDedup::Bloom(filter) => filter.insert(key.as_bytes()),
        }
    }

    /// Whether the tuple has (possibly) been seen.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        let key = TupleDedup::key(tuple);
        match self {
            TupleDedup::Exact(set) => set.contains(&key),
            TupleDedup::Bloom(filter) => filter.contains(key.as_bytes()),
        }
    }

    /// Distinct tuples recorded (first sightings).
    pub fn items(&self) -> u64 {
        match self {
            TupleDedup::Exact(set) => set.len() as u64,
            TupleDedup::Bloom(filter) => filter.items(),
        }
    }

    /// Serializes to the `.seen` sidecar format (plain text, one header
    /// line then mode-specific payload).
    pub fn to_text(&self) -> String {
        match self {
            TupleDedup::Exact(set) => {
                let mut keys: Vec<&str> = set.iter().map(String::as_str).collect();
                keys.sort_unstable(); // deterministic files for identical state
                let mut out = format!("hdc-seen v1 exact {}\n", keys.len());
                for k in keys {
                    out.push_str(k);
                    out.push('\n');
                }
                out
            }
            TupleDedup::Bloom(f) => {
                let mut out = format!(
                    "hdc-seen v1 bloom {} {} {} {}\n",
                    f.m, f.probes, f.seed, f.items
                );
                for w in &f.bits {
                    out.push_str(&format!("{w:016x}\n"));
                }
                out
            }
        }
    }

    /// Parses the `.seen` sidecar format. Errors on anything malformed
    /// — a corrupt sidecar must not silently reset dedup state.
    pub fn from_text(text: &str) -> io::Result<Self> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, format!("seen file: {msg}"));
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| bad("empty"))?;
        let fields: Vec<&str> = header.split_whitespace().collect();
        if fields.len() < 3 || fields[0] != "hdc-seen" || fields[1] != "v1" {
            return Err(bad("bad header"));
        }
        match fields[2] {
            "exact" => {
                let n: usize = fields
                    .get(3)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("bad exact count"))?;
                let set: HashSet<String> = lines.map(str::to_string).collect();
                if set.len() != n {
                    return Err(bad("exact count mismatch"));
                }
                Ok(TupleDedup::Exact(set))
            }
            "bloom" => {
                if fields.len() != 7 {
                    return Err(bad("bad bloom header"));
                }
                let m: u64 = fields[3].parse().map_err(|_| bad("bad m"))?;
                let probes: u32 = fields[4].parse().map_err(|_| bad("bad probes"))?;
                let seed: u64 = fields[5].parse().map_err(|_| bad("bad seed"))?;
                let items: u64 = fields[6].parse().map_err(|_| bad("bad items"))?;
                if m == 0 || !m.is_multiple_of(64) || probes == 0 {
                    return Err(bad("bad bloom geometry"));
                }
                let bits: Vec<u64> = lines
                    .map(|l| u64::from_str_radix(l.trim(), 16).map_err(|_| bad("bad word")))
                    .collect::<io::Result<_>>()?;
                if bits.len() as u64 != m / 64 {
                    return Err(bad("bloom word count mismatch"));
                }
                Ok(TupleDedup::Bloom(BloomFilter {
                    bits,
                    m,
                    probes,
                    seed,
                    items,
                }))
            }
            other => Err(bad(&format!("unknown mode {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_types::tuple::{cat_tuple, int_tuple};

    fn keys(n: u64, salt: u64) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("key-{salt}-{i}").into_bytes())
            .collect()
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        for seed in [0, 1, 7, u64::MAX] {
            let mut f = BloomFilter::with_capacity(500, seed);
            let ks = keys(500, seed);
            for k in &ks {
                f.insert(k);
            }
            for k in &ks {
                assert!(f.contains(k), "inserted key missing (seed {seed})");
            }
        }
    }

    #[test]
    fn bloom_false_positive_rate_is_modest() {
        let mut f = BloomFilter::with_capacity(1000, 42);
        for k in keys(1000, 1) {
            f.insert(&k);
        }
        let fp = keys(10_000, 2).iter().filter(|k| f.contains(k)).count();
        // ~0.8% expected; generous ceiling to keep the test stable.
        assert!(fp < 300, "false-positive rate too high: {fp}/10000");
    }

    #[test]
    fn dedup_counts_and_persists_both_modes() {
        let tuples = [
            int_tuple(&[1, -5]),
            cat_tuple(&[0, 3]),
            int_tuple(&[1, -5]), // duplicate
        ];
        for mut d in [TupleDedup::exact(), TupleDedup::bloom(100, 9)] {
            assert!(d.insert(&tuples[0]));
            assert!(d.insert(&tuples[1]));
            assert!(!d.insert(&tuples[2]), "duplicate must read as seen");
            assert_eq!(d.items(), 2);
            let restored = TupleDedup::from_text(&d.to_text()).unwrap();
            assert_eq!(restored.items(), 2);
            assert!(restored.contains(&tuples[0]));
            assert!(restored.contains(&tuples[1]));
        }
    }

    #[test]
    fn keys_are_injective_across_kinds_and_digit_splits() {
        // `c1` + `i2` must not collide with `c12` + `i...` etc.
        let a = TupleDedup::key(&Tuple::new(vec![Value::Cat(1), Value::Int(23)]));
        let b = TupleDedup::key(&Tuple::new(vec![Value::Cat(12), Value::Int(3)]));
        let c = TupleDedup::key(&Tuple::new(vec![Value::Int(1), Value::Int(23)]));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn corrupt_seen_files_error_cleanly() {
        for text in [
            "",
            "garbage",
            "hdc-seen v2 exact 0\n",
            "hdc-seen v1 exact 3\nonly-one\n",
            "hdc-seen v1 bloom 64 7 0\n", // short header
            "hdc-seen v1 bloom 64 7 0 0\nnot-hex\n",
            "hdc-seen v1 bloom 63 7 0 0\n", // m not multiple of 64
        ] {
            assert!(TupleDedup::from_text(text).is_err(), "{text:?} must fail");
        }
    }
}
