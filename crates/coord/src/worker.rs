//! The worker loop: lease a shard, crawl it with per-root heartbeats,
//! merge any salvaged prefix, report completion, repeat until the plan
//! drains. `hdc work --join URL` is a thin wrapper over
//! [`drive_worker`]; the in-process fleet tests drive it directly
//! against a [`crate::MemoryLeaseRepository`].
//!
//! Heartbeats ride the crawl's own resume boundaries
//! ([`hdc_core::ShardSpec::crawl_resumable_configured`] fires after
//! every completed root value), so no timer thread exists: a worker
//! that crashes or stalls simply stops heartbeating, its lease lapses,
//! and a peer salvages the shard from the last banked partial. A
//! heartbeat answered `lost` trips the session's [`CancelToken`], so
//! the worker abandons the shard before issuing further queries.

use std::io;
use std::time::Duration;

use hdc_core::{
    snapshot_of_report, CancelToken, CrawlError, CrawlMetrics, CrawlReport, ResumableShard,
    RetryPolicy, SessionConfig, ShardSnapshot, ShardSpec,
};
use hdc_types::{DbError, HiddenDatabase, Schema};

use crate::lease::{LeaseDecision, LeaseRepository};

/// Worker behavior knobs.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Display name sent with lease requests (logs only).
    pub name: String,
    /// Retry policy for the data connection, threaded into every
    /// shard session.
    pub retry: RetryPolicy,
    /// Ceiling on how long one `wait` pause may sleep — the coordinator
    /// suggests a delay, the worker polls at least this often.
    pub wait_cap_ms: u64,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            name: "worker".to_string(),
            retry: RetryPolicy::default(),
            wait_cap_ms: 200,
        }
    }
}

/// What one worker did over its lifetime.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerReport {
    /// Shards leased, crawled, and accepted.
    pub shards_completed: u64,
    /// Shards whose lease was lost mid-crawl or whose completion was
    /// rejected as stale (a peer salvaged them — no work is lost).
    pub shards_lost: u64,
    /// Grants that carried a salvaged partial (this worker resumed a
    /// peer's shard mid-flight).
    pub shards_resumed: u64,
    /// Queries this worker charged for *accepted* shards.
    pub queries: u64,
    /// Tuples this worker delivered in accepted shards.
    pub tuples: u64,
    /// Heartbeats sent.
    pub heartbeats: u64,
    /// `wait` pauses taken.
    pub waits: u64,
}

/// Merges a salvaged prefix snapshot with a freshly crawled suffix
/// report into one snapshot for shard `index`.
///
/// The resume boundary partitions the shard's bag by root value, so
/// prefix + suffix tuples concatenated are exactly the whole shard's
/// bag (as a multiset). The query accounting records the honest spend
/// of both passes: the suffix may re-pay slice fetches it shared with
/// the prefix, but it is always strictly cheaper than a whole-shard
/// redo (`fleet_equiv` pins both). `frontier` is `None` for a
/// completed shard, or the new cursor for a heartbeat partial.
pub fn merge_snapshot(
    index: usize,
    prefix: Option<&ShardSnapshot>,
    suffix: &CrawlReport,
    frontier: Option<u64>,
) -> ShardSnapshot {
    let mut snap = snapshot_of_report(index, suffix, frontier);
    let Some(p) = prefix else {
        return snap;
    };
    snap.queries += p.queries;
    snap.resolved += p.resolved;
    snap.overflowed += p.overflowed;
    snap.pruned += p.pruned;
    let mut merged = CrawlMetrics::default();
    merged.merge_from(&p.metrics);
    merged.merge_from(&snap.metrics);
    snap.metrics = merged;
    let mut tuples = p.tuples.clone();
    tuples.extend(snap.tuples.iter().cloned());
    snap.tuples = tuples;
    snap
}

/// A coordination failure (transport or protocol), shaped as the crawl
/// error the caller already handles.
fn coord_failure(e: io::Error) -> CrawlError {
    CrawlError::Db {
        error: DbError::Backend(format!("coordination: {e}")),
        partial: Box::new(CrawlReport {
            algorithm: "fleet-worker",
            tuples: Vec::new(),
            queries: 0,
            resolved: 0,
            overflowed: 0,
            pruned: 0,
            metrics: CrawlMetrics::default(),
            progress: Vec::new(),
        }),
    }
}

/// Runs the lease → crawl → report loop until the coordinator answers
/// `drained`.
///
/// Each granted shard is crawled with
/// [`ShardSpec::crawl_resumable_configured`]; after every completed
/// root value the worker heartbeats, banking a partial snapshot
/// (`frontier` = roots done, salvaged prefix included) so a peer can
/// resume from exactly that point if this worker dies. A grant carrying
/// a salvaged partial is resumed from its frontier: the worker crawls
/// only [`ResumableShard::resume_suffix`] and merges via
/// [`merge_snapshot`].
pub fn drive_worker(
    repo: &mut dyn LeaseRepository,
    db: &mut dyn HiddenDatabase,
    schema: &Schema,
    cfg: &WorkerConfig,
) -> Result<WorkerReport, CrawlError> {
    let mut report = WorkerReport::default();
    loop {
        match repo.lease(&cfg.name).map_err(coord_failure)? {
            LeaseDecision::Drained => return Ok(report),
            LeaseDecision::Wait { retry_ms } => {
                report.waits += 1;
                std::thread::sleep(Duration::from_millis(
                    retry_ms.clamp(1, cfg.wait_cap_ms.max(1)),
                ));
            }
            LeaseDecision::Grant(g) => {
                let Some(spec) = ShardSpec::parse_signature(&g.signature) else {
                    return Err(coord_failure(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unparseable shard signature {:?} (version skew?)", g.signature),
                    )));
                };
                // A salvaged partial moves the start line: crawl only
                // the suffix and merge the prefix back in. If the spec
                // cannot resume (or the cursor is somehow out of
                // range), recrawl the whole shard and drop the prefix —
                // never merge a prefix the crawl also covers.
                let cursor = g.partial.as_ref().and_then(|p| p.frontier).unwrap_or(0) as usize;
                let (run_spec, prefix) = if cursor > 0 {
                    match spec.resume_suffix(cursor) {
                        Some(suffix) => (suffix, g.partial.as_ref()),
                        None => (spec.clone(), None),
                    }
                } else {
                    (spec.clone(), None)
                };
                if prefix.is_some() {
                    report.shards_resumed += 1;
                }

                let halt = CancelToken::new();
                let mut lease_lost = false;
                let mut coord_err: Option<io::Error> = None;
                let result = {
                    let halt_ref = &halt;
                    let heartbeats = &mut report.heartbeats;
                    let lease_lost = &mut lease_lost;
                    let coord_err = &mut coord_err;
                    run_spec.crawl_resumable_configured(
                        db,
                        schema,
                        SessionConfig {
                            retry: cfg.retry.clone(),
                            cancel: Some(halt_ref),
                            ..SessionConfig::default()
                        },
                        |done, interim| {
                            *heartbeats += 1;
                            let banked = merge_snapshot(
                                g.index,
                                prefix,
                                interim,
                                Some(cursor as u64 + done),
                            );
                            match repo.heartbeat(g.index, g.lease, Some(&banked)) {
                                Ok(true) => {}
                                Ok(false) => {
                                    *lease_lost = true;
                                    halt_ref.cancel();
                                }
                                Err(e) => {
                                    *coord_err = Some(e);
                                    halt_ref.cancel();
                                }
                            }
                        },
                    )
                };

                match result {
                    Ok(shard_report) => {
                        let snapshot = merge_snapshot(g.index, prefix, &shard_report, None);
                        match repo
                            .complete(g.index, g.lease, snapshot)
                            .map_err(coord_failure)?
                        {
                            Some(_new) => {
                                report.shards_completed += 1;
                                report.queries += shard_report.queries;
                                report.tuples += shard_report.tuples.len() as u64;
                            }
                            // Stale: the lease lapsed and a peer owns the
                            // shard now. Its result will be used; drop ours.
                            None => report.shards_lost += 1,
                        }
                    }
                    Err(CrawlError::Stopped { .. }) if lease_lost => {
                        report.shards_lost += 1;
                    }
                    Err(CrawlError::Stopped { .. }) if coord_err.is_some() => {
                        return Err(coord_failure(coord_err.expect("just checked")));
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }
}
