//! The worker-side wire client for the coordination protocol: a
//! [`LeaseRepository`] that speaks HTTP to a [`crate::Coordinator`]
//! mounted on `hdc serve --coordinate`.
//!
//! One short-lived TCP connection per verb (the `hdc stop` idiom):
//! lease traffic is rare — once per shard plus one heartbeat per root
//! value — so connection reuse buys nothing and statelessness keeps
//! worker crash behavior trivial.

use std::io::{self, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use hdc_core::{CrawlCheckpoint, CrawlRepository, ShardSnapshot};
use hdc_net::http;

use crate::lease::{LeaseDecision, LeaseGrant, LeaseRepository};

/// Per-request socket timeout: a coordinator that stalls longer than
/// this counts as unreachable.
const WIRE_TIMEOUT: Duration = Duration::from_secs(30);

/// A [`LeaseRepository`] over HTTP. Construction fetches the plan from
/// `GET /plan`, so a connected client always knows every shard
/// signature and the lease TTL.
#[derive(Clone, Debug)]
pub struct WireLeaseRepository {
    addr: String,
    plan: Vec<String>,
    ttl_ms: u64,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl WireLeaseRepository {
    /// Connects to a coordinator at `url` (`http://host:port`, scheme
    /// optional) and fetches its plan.
    pub fn connect(url: &str) -> io::Result<Self> {
        let addr = url
            .trim()
            .trim_start_matches("http://")
            .trim_end_matches('/')
            .to_string();
        let mut client = WireLeaseRepository {
            addr,
            plan: Vec::new(),
            ttl_ms: 0,
        };
        let body = client.call("GET", "/plan", b"")?;
        let mut lines = body.lines();
        let header = lines.next().unwrap_or("");
        let fields: Vec<&str> = header.split_whitespace().collect();
        if fields.len() != 5 || fields[0] != "hdc-coord" || fields[1] != "v1" {
            return Err(invalid(format!(
                "not a coordinator (bad /plan header {header:?}) — is the server running with --coordinate?"
            )));
        }
        client.ttl_ms = fields[2]
            .parse()
            .map_err(|_| invalid(format!("bad ttl in {header:?}")))?;
        let total: usize = fields[3]
            .parse()
            .map_err(|_| invalid(format!("bad shard count in {header:?}")))?;
        client.plan = lines.map(str::to_string).collect();
        if client.plan.len() != total {
            return Err(invalid(format!(
                "plan advertised {total} shards but sent {}",
                client.plan.len()
            )));
        }
        Ok(client)
    }

    /// The lease TTL the coordinator advertises.
    pub fn ttl_ms(&self) -> u64 {
        self.ttl_ms
    }

    /// One request/response round trip on a fresh connection. Non-2xx
    /// responses become errors carrying the server's message (so the
    /// `409 mismatch: …` plan hint reaches the operator verbatim).
    fn call(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<String> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(WIRE_TIMEOUT))?;
        stream.set_write_timeout(Some(WIRE_TIMEOUT))?;
        http::write_request(&mut stream, method, path, body)?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let resp = http::read_response(&mut reader)?;
        let text = String::from_utf8_lossy(&resp.body).into_owned();
        if resp.status / 100 != 2 {
            return Err(invalid(format!(
                "coordinator answered {} on {path}: {}",
                resp.status,
                text.trim()
            )));
        }
        Ok(text)
    }

    /// A one-snapshot checkpoint payload carrying the full plan (the
    /// coordinator re-verifies the fingerprint on every message).
    fn snapshot_payload(&self, snapshot: &ShardSnapshot) -> String {
        let mut cp = CrawlCheckpoint::new(self.plan.clone());
        cp.shards.push(snapshot.clone());
        cp.to_json()
    }
}

impl CrawlRepository for WireLeaseRepository {
    fn load(&mut self) -> io::Result<Option<CrawlCheckpoint>> {
        let body = self.call("GET", "/checkpoint", b"")?;
        Ok(Some(CrawlCheckpoint::from_json(&body)?))
    }

    fn store(&mut self, _checkpoint: &CrawlCheckpoint) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "wire lease clients report work via complete(), not store()",
        ))
    }
}

impl LeaseRepository for WireLeaseRepository {
    fn plan(&mut self) -> io::Result<Vec<String>> {
        Ok(self.plan.clone())
    }

    fn lease(&mut self, worker: &str) -> io::Result<LeaseDecision> {
        let body = self.call("POST", "/lease", worker.as_bytes())?;
        let (head, rest) = match body.split_once('\n') {
            Some((h, r)) => (h, r.trim()),
            None => (body.trim(), ""),
        };
        let fields: Vec<&str> = head.split_whitespace().collect();
        match fields.first().copied() {
            Some("grant") if fields.len() == 4 => {
                let index: usize = fields[1]
                    .parse()
                    .map_err(|_| invalid(format!("bad grant index {head:?}")))?;
                let lease: u64 = fields[2]
                    .parse()
                    .map_err(|_| invalid(format!("bad grant lease {head:?}")))?;
                let ttl_ms: u64 = fields[3]
                    .parse()
                    .map_err(|_| invalid(format!("bad grant ttl {head:?}")))?;
                let signature = self
                    .plan
                    .get(index)
                    .cloned()
                    .ok_or_else(|| invalid(format!("grant index {index} beyond plan")))?;
                let partial = if rest.is_empty() {
                    None
                } else {
                    let cp = CrawlCheckpoint::from_json(rest)?;
                    cp.shards.into_iter().next()
                };
                Ok(LeaseDecision::Grant(Box::new(LeaseGrant {
                    index,
                    signature,
                    lease,
                    ttl_ms,
                    partial,
                })))
            }
            Some("wait") if fields.len() == 2 => {
                let retry_ms = fields[1]
                    .parse()
                    .map_err(|_| invalid(format!("bad wait {head:?}")))?;
                Ok(LeaseDecision::Wait { retry_ms })
            }
            Some("drained") => Ok(LeaseDecision::Drained),
            _ => Err(invalid(format!("unrecognized lease answer {head:?}"))),
        }
    }

    fn heartbeat(
        &mut self,
        index: usize,
        lease: u64,
        partial: Option<&ShardSnapshot>,
    ) -> io::Result<bool> {
        let mut body = format!("{index} {lease}\n");
        if let Some(p) = partial {
            body.push_str(&self.snapshot_payload(p));
        }
        let answer = self.call("POST", "/heartbeat", body.as_bytes())?;
        match answer.trim() {
            "ok" => Ok(true),
            "lost" => Ok(false),
            other => Err(invalid(format!("unrecognized heartbeat answer {other:?}"))),
        }
    }

    fn complete(
        &mut self,
        index: usize,
        lease: u64,
        snapshot: ShardSnapshot,
    ) -> io::Result<Option<u64>> {
        let body = format!("{index} {lease}\n{}", self.snapshot_payload(&snapshot));
        let answer = self.call("POST", "/complete", body.as_bytes())?;
        let answer = answer.trim();
        if answer == "lost" {
            return Ok(None);
        }
        match answer.strip_prefix("ok ").and_then(|n| n.parse().ok()) {
            Some(new) => Ok(Some(new)),
            None => Err(invalid(format!("unrecognized complete answer {answer:?}"))),
        }
    }
}
