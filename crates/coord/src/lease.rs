//! Shard leasing: the coordination contract and its canonical
//! in-process implementation.
//!
//! A lease is the unit of fleet fault tolerance. The coordinator hands
//! a worker one pending shard at a time as a *lease* — an id plus a
//! deadline. The worker renews by heartbeat (optionally banking a
//! partial [`ShardSnapshot`] of work done so far); when the deadline
//! lapses un-renewed, the shard is reclaimed and the next
//! [`LeaseRepository::lease`] call hands it — with the best banked
//! partial — to a live peer. Completion is exactly-once by
//! construction: a shard's result is accepted only from the lease id
//! currently on record, and only once.

use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use hdc_core::{CrawlCheckpoint, CrawlRepository, ShardSnapshot};

use crate::bloom::{DedupStats, TupleDedup};

/// A granted lease: one shard, one holder, one deadline.
#[derive(Clone, Debug)]
pub struct LeaseGrant {
    /// The shard's index in the plan.
    pub index: usize,
    /// The shard's plan signature ([`hdc_core::ShardSpec::signature`]);
    /// the worker reconstructs the spec with
    /// [`hdc_core::ShardSpec::parse_signature`].
    pub signature: String,
    /// Lease id — must accompany every heartbeat and the completion.
    pub lease: u64,
    /// Time the holder has between heartbeats before the shard is
    /// reclaimed.
    pub ttl_ms: u64,
    /// Salvaged partial snapshot from a previous (expired) holder, if
    /// any: `frontier = Some(c)` means the first `c` root values are
    /// done and the grantee should crawl only the suffix.
    pub partial: Option<ShardSnapshot>,
}

/// The coordinator's answer to a lease request.
#[derive(Clone, Debug)]
pub enum LeaseDecision {
    /// A shard was pending: crawl it.
    Grant(Box<LeaseGrant>),
    /// Every pending shard is currently leased to a live peer; ask
    /// again after `retry_ms`.
    Wait {
        /// Suggested retry delay (until the earliest lease can expire).
        retry_ms: u64,
    },
    /// Every shard in the plan is complete: the fleet is done.
    Drained,
}

/// The distributed-coordination contract, layered on
/// [`CrawlRepository`]: `load` assembles the fleet's accumulated
/// checkpoint (complete shards plus best partials), `store` seeds the
/// lease state from a persisted checkpoint, and the three lease verbs
/// drive the worker loop.
///
/// Every method takes `&mut self` so a plain client value (e.g. one
/// wire connection) can implement it without interior mutability;
/// shared in-process implementations hand out cheap clones instead.
pub trait LeaseRepository: CrawlRepository {
    /// The shard plan, as signatures in plan order.
    fn plan(&mut self) -> io::Result<Vec<String>>;

    /// Requests a shard lease for `worker` (a display name for logs —
    /// identity is the lease id, not the name).
    fn lease(&mut self, worker: &str) -> io::Result<LeaseDecision>;

    /// Renews lease `lease` on shard `index`, optionally banking a
    /// partial snapshot. Returns `false` when the lease is no longer
    /// held (expired and reclaimed): the worker must abandon the shard
    /// immediately — a peer may already own it.
    fn heartbeat(
        &mut self,
        index: usize,
        lease: u64,
        partial: Option<&ShardSnapshot>,
    ) -> io::Result<bool>;

    /// Reports shard `index` complete under lease `lease`. Returns
    /// `Some(new_tuples)` — the dedup-counted number of never-before-
    /// seen tuples (the full tuple count when dedup is off) — when the
    /// result was accepted, `None` when the lease had been reclaimed
    /// (the result is discarded; the salvaging peer's will be used).
    fn complete(
        &mut self,
        index: usize,
        lease: u64,
        snapshot: ShardSnapshot,
    ) -> io::Result<Option<u64>>;
}

/// One live lease.
struct Active {
    lease: u64,
    worker: String,
    deadline: Instant,
    partial: Option<ShardSnapshot>,
}

/// The coordinator's whole mutable state, under one lock.
struct LeaseState {
    plan: Vec<String>,
    ttl: Duration,
    next_lease: u64,
    /// Completed shards, plan-indexed. Set exactly once.
    done: Vec<Option<ShardSnapshot>>,
    /// Live leases by shard index.
    active: HashMap<usize, Active>,
    /// Best partial snapshot salvaged from expired leases, plan-indexed.
    salvage: Vec<Option<ShardSnapshot>>,
    dedup: Option<TupleDedup>,
    stats: DedupStats,
    expired: u64,
    salvaged_grants: u64,
}

impl LeaseState {
    /// Reclaims every lease whose deadline has passed, banking its best
    /// partial for the next grantee.
    fn reclaim_expired(&mut self, now: Instant) {
        let lapsed: Vec<usize> = self
            .active
            .iter()
            .filter(|(_, a)| a.deadline <= now)
            .map(|(&i, _)| i)
            .collect();
        for i in lapsed {
            let a = self.active.remove(&i).expect("just listed");
            self.expired += 1;
            bank_partial(&mut self.salvage[i], a.partial);
        }
    }

    fn all_done(&self) -> bool {
        self.done.iter().all(Option::is_some)
    }

    /// The accumulated checkpoint: complete shards in plan order, then
    /// the best partial (banked or in-flight) for each unfinished shard.
    fn checkpoint(&self) -> CrawlCheckpoint {
        let mut cp = CrawlCheckpoint::new(self.plan.clone());
        for snap in self.done.iter().flatten() {
            cp.shards.push(snap.clone());
        }
        for (i, banked) in self.salvage.iter().enumerate() {
            if self.done[i].is_some() {
                continue;
            }
            let mut best = banked.clone();
            if let Some(a) = self.active.get(&i) {
                bank_partial(&mut best, a.partial.clone());
            }
            if let Some(p) = best {
                cp.shards.push(p);
            }
        }
        cp
    }

    /// Runs `tuples` through dedup (when configured), returning how
    /// many were first sightings. `count` controls whether the tallies
    /// accumulate — seeding from a restored checkpoint marks tuples
    /// seen without recounting them.
    fn absorb_tuples(&mut self, tuples: &[hdc_types::Tuple], count: bool) -> u64 {
        let Some(dedup) = self.dedup.as_mut() else {
            return tuples.len() as u64;
        };
        let mut new = 0;
        for t in tuples {
            if dedup.insert(t) {
                new += 1;
            } else if count {
                self.stats.seen += 1;
            }
        }
        if count {
            self.stats.new += new;
        }
        new
    }
}

/// Keeps the partial with the furthest frontier (replacing `slot` only
/// when `candidate` is strictly ahead).
fn bank_partial(slot: &mut Option<ShardSnapshot>, candidate: Option<ShardSnapshot>) {
    let Some(c) = candidate else { return };
    if c.frontier.is_none() {
        // A "complete" snapshot must go through `complete()`, not the
        // salvage path; drop it rather than corrupt resume logic.
        return;
    }
    let ahead = match slot {
        Some(s) => c.frontier > s.frontier,
        None => true,
    };
    if ahead {
        *slot = Some(c);
    }
}

/// The canonical [`LeaseRepository`]: all state in-process behind one
/// mutex. Clones share state, so one value can be handed to N worker
/// threads (the in-process fleet) *and* wrapped by the wire-serving
/// [`crate::Coordinator`] at the same time.
#[derive(Clone)]
pub struct MemoryLeaseRepository {
    state: Arc<Mutex<LeaseState>>,
}

impl MemoryLeaseRepository {
    /// A fresh lease repository over `plan` (shard signatures in plan
    /// order) with the given lease TTL.
    pub fn new(plan: Vec<String>, ttl: Duration) -> Self {
        let n = plan.len();
        MemoryLeaseRepository {
            state: Arc::new(Mutex::new(LeaseState {
                plan,
                ttl,
                next_lease: 1,
                done: vec![None; n],
                active: HashMap::new(),
                salvage: vec![None; n],
                dedup: None,
                stats: DedupStats::default(),
                expired: 0,
                salvaged_grants: 0,
            })),
        }
    }

    /// Attaches cross-restart tuple dedup (exact or Bloom); completions
    /// are then answered with the count of never-before-seen tuples.
    pub fn with_dedup(self, dedup: TupleDedup) -> Self {
        self.lock().dedup = Some(dedup);
        self
    }

    fn lock(&self) -> MutexGuard<'_, LeaseState> {
        self.state.lock().expect("lease state poisoned")
    }

    /// Forces every live lease to expire **now** — the deterministic
    /// test hook standing in for a crashed worker's deadline lapsing.
    /// Returns how many leases were reclaimed.
    pub fn expire_leases_now(&self) -> usize {
        let mut s = self.lock();
        let n = s.active.len();
        let indices: Vec<usize> = s.active.keys().copied().collect();
        for i in indices {
            let a = s.active.remove(&i).expect("just listed");
            s.expired += 1;
            bank_partial(&mut s.salvage[i], a.partial);
        }
        n
    }

    /// Whether every shard in the plan has completed.
    pub fn is_drained(&self) -> bool {
        self.lock().all_done()
    }

    /// `(complete, total)` shard counts.
    pub fn progress(&self) -> (usize, usize) {
        let s = self.lock();
        (s.done.iter().flatten().count(), s.plan.len())
    }

    /// Lease TTL in milliseconds.
    pub fn ttl_ms(&self) -> u64 {
        self.lock().ttl.as_millis() as u64
    }

    /// Dedup tallies (zero when dedup is off). `expired` counts
    /// reclaimed leases; `salvaged` counts grants that carried a
    /// partial.
    pub fn fleet_stats(&self) -> (DedupStats, u64, u64) {
        let s = self.lock();
        (s.stats, s.expired, s.salvaged_grants)
    }

    /// Serialized dedup state for the `.seen` sidecar, when dedup is on.
    pub fn dedup_text(&self) -> Option<String> {
        self.lock().dedup.as_ref().map(TupleDedup::to_text)
    }

    /// The current accumulated checkpoint (same as
    /// [`CrawlRepository::load`], without the `Option`).
    pub fn checkpoint(&self) -> CrawlCheckpoint {
        self.lock().checkpoint()
    }
}

impl CrawlRepository for MemoryLeaseRepository {
    fn load(&mut self) -> io::Result<Option<CrawlCheckpoint>> {
        Ok(Some(self.lock().checkpoint()))
    }

    /// Seeds the lease state from a persisted checkpoint: complete
    /// snapshots mark their shards done, partial snapshots become
    /// salvage for the next grantee, and every restored tuple is marked
    /// seen in dedup **without** counting toward the new/seen tallies.
    /// Errors with the typed plan-mismatch message when the checkpoint
    /// belongs to a different plan.
    fn store(&mut self, checkpoint: &CrawlCheckpoint) -> io::Result<()> {
        let mut s = self.lock();
        let plan = s.plan.clone();
        checkpoint
            .verify_plan(&plan)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        for snap in &checkpoint.shards {
            s.absorb_tuples(&snap.tuples, false);
            if snap.is_complete() {
                s.done[snap.index] = Some(snap.clone());
                s.salvage[snap.index] = None;
            } else if s.done[snap.index].is_none() {
                bank_partial(&mut s.salvage[snap.index], Some(snap.clone()));
            }
        }
        Ok(())
    }
}

impl LeaseRepository for MemoryLeaseRepository {
    fn plan(&mut self) -> io::Result<Vec<String>> {
        Ok(self.lock().plan.clone())
    }

    fn lease(&mut self, worker: &str) -> io::Result<LeaseDecision> {
        let now = Instant::now();
        let mut s = self.lock();
        s.reclaim_expired(now);
        let pending = (0..s.plan.len())
            .find(|&i| s.done[i].is_none() && !s.active.contains_key(&i));
        if let Some(index) = pending {
            let lease = s.next_lease;
            s.next_lease += 1;
            let partial = s.salvage[index].clone();
            if partial.is_some() {
                s.salvaged_grants += 1;
            }
            let ttl = s.ttl;
            s.active.insert(
                index,
                Active {
                    lease,
                    worker: worker.to_string(),
                    deadline: now + ttl,
                    partial: partial.clone(),
                },
            );
            return Ok(LeaseDecision::Grant(Box::new(LeaseGrant {
                index,
                signature: s.plan[index].clone(),
                lease,
                ttl_ms: ttl.as_millis() as u64,
                partial,
            })));
        }
        if s.all_done() {
            return Ok(LeaseDecision::Drained);
        }
        // Everything pending is leased to live peers: wait until the
        // earliest deadline can lapse (floor 10ms so a tight loop still
        // yields).
        let retry_ms = s
            .active
            .values()
            .map(|a| a.deadline.saturating_duration_since(now).as_millis() as u64)
            .min()
            .unwrap_or_else(|| (s.ttl.as_millis() as u64) / 4)
            .max(10);
        Ok(LeaseDecision::Wait { retry_ms })
    }

    fn heartbeat(
        &mut self,
        index: usize,
        lease: u64,
        partial: Option<&ShardSnapshot>,
    ) -> io::Result<bool> {
        let now = Instant::now();
        let mut s = self.lock();
        s.reclaim_expired(now);
        let ttl = s.ttl;
        match s.active.get_mut(&index) {
            Some(a) if a.lease == lease => {
                a.deadline = now + ttl;
                if let Some(p) = partial {
                    if p.index != index {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidInput,
                            format!("partial snapshot for shard {} on lease {index}", p.index),
                        ));
                    }
                    bank_partial(&mut a.partial, Some(p.clone()));
                }
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn complete(
        &mut self,
        index: usize,
        lease: u64,
        snapshot: ShardSnapshot,
    ) -> io::Result<Option<u64>> {
        let mut s = self.lock();
        if index >= s.plan.len() || snapshot.index != index {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("completion for shard {index} does not match snapshot/plan"),
            ));
        }
        if !snapshot.is_complete() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "completion carried a partial snapshot (frontier set)",
            ));
        }
        // Deliberately no expiry sweep here: a *finished* shard from a
        // lapsed-but-not-reclaimed lease is still exactly the
        // deterministic result the plan promises, so accept it. Only a
        // lease that was actually reclaimed (and possibly re-granted)
        // loses its claim.
        let holds = s.active.get(&index).is_some_and(|a| a.lease == lease);
        if !holds || s.done[index].is_some() {
            return Ok(None);
        }
        let new = s.absorb_tuples(&snapshot.tuples, true);
        s.active.remove(&index);
        s.salvage[index] = None;
        s.done[index] = Some(snapshot);
        Ok(Some(new))
    }
}

// Silence the never-read warning on `worker` without dropping the field
// — it exists for debugging and future log lines.
impl std::fmt::Debug for MemoryLeaseRepository {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.lock();
        let holders: Vec<&str> = s.active.values().map(|a| a.worker.as_str()).collect();
        f.debug_struct("MemoryLeaseRepository")
            .field("plan", &s.plan.len())
            .field("done", &s.done.iter().flatten().count())
            .field("active", &holders)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_core::snapshot_of_report;
    use hdc_core::CrawlReport;
    use hdc_types::tuple::int_tuple;

    fn plan3() -> Vec<String> {
        vec!["sig-a".into(), "sig-b".into(), "sig-c".into()]
    }

    fn report(n: i64) -> CrawlReport {
        CrawlReport {
            algorithm: "test",
            tuples: (0..n).map(|v| int_tuple(&[v])).collect(),
            queries: n as u64 * 2,
            resolved: n as u64,
            overflowed: n as u64,
            pruned: 0,
            metrics: Default::default(),
            progress: Vec::new(),
        }
    }

    fn grant(repo: &mut MemoryLeaseRepository, worker: &str) -> LeaseGrant {
        match repo.lease(worker).unwrap() {
            LeaseDecision::Grant(g) => *g,
            other => panic!("expected grant, got {other:?}"),
        }
    }

    #[test]
    fn leases_are_exclusive_and_drain_in_plan_order() {
        let mut repo = MemoryLeaseRepository::new(plan3(), Duration::from_secs(60));
        let g0 = grant(&mut repo, "a");
        let g1 = grant(&mut repo, "b");
        let g2 = grant(&mut repo, "c");
        assert_eq!((g0.index, g1.index, g2.index), (0, 1, 2));
        assert!(matches!(
            repo.lease("d").unwrap(),
            LeaseDecision::Wait { .. }
        ));
        for g in [g0, g1, g2] {
            assert!(repo
                .complete(g.index, g.lease, snapshot_of_report(g.index, &report(2), None))
                .unwrap()
                .is_some());
        }
        assert!(matches!(repo.lease("d").unwrap(), LeaseDecision::Drained));
        assert!(repo.is_drained());
    }

    #[test]
    fn expired_lease_is_reclaimed_with_best_partial_exactly_once() {
        let mut repo = MemoryLeaseRepository::new(plan3(), Duration::from_secs(60));
        let g0 = grant(&mut repo, "dying");
        let partial = snapshot_of_report(g0.index, &report(1), Some(1));
        assert!(repo.heartbeat(g0.index, g0.lease, Some(&partial)).unwrap());
        assert_eq!(repo.expire_leases_now(), 1);
        // Old lease is dead for every verb.
        assert!(!repo.heartbeat(g0.index, g0.lease, None).unwrap());
        assert!(repo
            .complete(g0.index, g0.lease, snapshot_of_report(g0.index, &report(2), None))
            .unwrap()
            .is_none());
        // The salvaging peer receives the banked partial...
        let g0b = grant(&mut repo, "peer");
        assert_eq!(g0b.index, 0);
        assert_eq!(g0b.partial.as_ref().and_then(|p| p.frontier), Some(1));
        // ...and its completion is the only one accepted.
        assert!(repo
            .complete(g0b.index, g0b.lease, snapshot_of_report(0, &report(2), None))
            .unwrap()
            .is_some());
        let (_, expired, salvaged) = repo.fleet_stats();
        assert_eq!((expired, salvaged), (1, 1));
    }

    #[test]
    fn late_complete_without_reclaim_is_accepted() {
        // Deadline lapsed but nobody swept: finished work is still the
        // deterministic answer — accept it.
        let mut repo = MemoryLeaseRepository::new(plan3(), Duration::from_millis(0));
        let g = grant(&mut repo, "slow");
        std::thread::sleep(Duration::from_millis(2));
        assert!(repo
            .complete(g.index, g.lease, snapshot_of_report(g.index, &report(1), None))
            .unwrap()
            .is_some());
    }

    #[test]
    fn store_seeds_done_and_salvage_and_rejects_foreign_plans() {
        let mut repo = MemoryLeaseRepository::new(plan3(), Duration::from_secs(60));
        let mut cp = CrawlCheckpoint::new(plan3());
        cp.shards.push(snapshot_of_report(0, &report(2), None));
        cp.shards.push(snapshot_of_report(2, &report(1), Some(1)));
        repo.store(&cp).unwrap();
        assert_eq!(repo.progress(), (1, 3));
        let g = grant(&mut repo, "w");
        assert_eq!(g.index, 1, "done shard skipped");
        let g2 = grant(&mut repo, "w");
        assert_eq!(g2.index, 2);
        assert_eq!(g2.partial.as_ref().and_then(|p| p.frontier), Some(1));

        let foreign = CrawlCheckpoint::new(vec!["other".into()]);
        let err = repo.store(&foreign).unwrap_err();
        assert!(err.to_string().contains("plan mismatch"), "{err}");
    }

    #[test]
    fn dedup_counts_new_once_across_completions_and_seeding() {
        let mut repo = MemoryLeaseRepository::new(plan3(), Duration::from_secs(60))
            .with_dedup(TupleDedup::exact());
        // Seed shard 0's two tuples from a restored checkpoint: seen,
        // never counted.
        let mut cp = CrawlCheckpoint::new(plan3());
        cp.shards.push(snapshot_of_report(0, &report(2), None));
        repo.store(&cp).unwrap();

        let g = grant(&mut repo, "w"); // shard 1
        // report(3) = tuples 0,1,2 — two already seen from seeding.
        let new = repo
            .complete(g.index, g.lease, snapshot_of_report(g.index, &report(3), None))
            .unwrap()
            .unwrap();
        assert_eq!(new, 1);
        let (stats, _, _) = repo.fleet_stats();
        assert_eq!((stats.new, stats.seen), (1, 2));
    }
}
