//! Distributed crawl coordination for the hidden-database crawler.
//!
//! The sharded crawl's determinism contract ([`hdc_core::ShardSpec`])
//! says a shard's charged query sequence, cost, and extracted bag depend
//! only on the spec and the database — any session, any machine, any
//! order. This crate turns that contract into a *fleet*: one
//! coordinator owns the shard plan and leases shards to workers; workers
//! crawl leased shards against the data service and report results back.
//! The fleet's merged bag and total charged cost are exactly a solo
//! sharded crawl's (the `fleet_equiv` differential suite pins this).
//!
//! # Pieces
//!
//! * [`LeaseRepository`] — the coordination contract: atomically lease a
//!   pending shard (lease id + deadline), renew by heartbeat, report
//!   completion. Expired leases are reclaimed, so a crashed worker's
//!   shard is salvaged by a peer. [`MemoryLeaseRepository`] is the
//!   canonical in-process implementation (and the coordinator's own
//!   state machine); [`WireLeaseRepository`] speaks the same contract
//!   over HTTP to a [`Coordinator`] mounted on the wire server.
//! * **Partial snapshots** — a heartbeat may carry a partial
//!   [`hdc_core::ShardSnapshot`] (`frontier = Some(c)`: the shard's
//!   first `c` root values are done). When the lease expires, the
//!   salvaging peer resumes from the frontier
//!   ([`hdc_core::ResumableShard::resume_suffix`]) and replays only the
//!   un-checkpointed suffix instead of the whole shard.
//! * [`TupleDedup`] — cross-restart tuple dedup: an exact set or a
//!   seeded double-hash [`BloomFilter`], persisted beside the
//!   checkpoint, so repeated or incremental crawls report how many
//!   tuples are genuinely new. Dedup **annotates** (new-vs-seen
//!   counters); the crawled bag itself always stays exact.
//! * [`drive_worker`] — the worker loop (`hdc work --join URL`): lease,
//!   crawl with per-root heartbeats, merge any salvaged prefix, report,
//!   repeat until the plan drains.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
pub mod coordinator;
pub mod lease;
pub mod wire;
pub mod worker;

pub use bloom::{BloomFilter, DedupStats, TupleDedup};
pub use coordinator::{Coordinator, CoordinatorConfig, FleetOutcome, Restore};
pub use lease::{LeaseDecision, LeaseGrant, LeaseRepository, MemoryLeaseRepository};
pub use wire::WireLeaseRepository;
pub use worker::{drive_worker, merge_snapshot, WorkerConfig, WorkerReport};
