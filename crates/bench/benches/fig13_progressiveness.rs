//! **Figure 13** — output progressiveness of hybrid (k = 256).
//!
//! For Yahoo and Adult, plots the percentage of tuples output against the
//! percentage of queries issued. The paper observes "linear
//! progressiveness for both datasets": a crawler can stop at any moment
//! and keep tuples proportional to the queries spent.

use hdc_bench::{crawl, refdata, ShapeChecks, Table};
use hdc_core::{CrawlReport, Hybrid};
use hdc_data::{adult, yahoo};

const SEED: u64 = 42;
const K: usize = 256;

/// Percentage of tuples output at each decile of the query budget.
fn deciles(report: &CrawlReport) -> Vec<f64> {
    let total_q = report.queries as f64;
    let total_t = report.tuples.len() as f64;
    (0..=10)
        .map(|decile| {
            let q_cut = total_q * decile as f64 / 10.0;
            let tuples = report
                .progress
                .iter()
                .rev()
                .find(|p| p.queries as f64 <= q_cut)
                .map(|p| p.tuples)
                .unwrap_or(0);
            100.0 * tuples as f64 / total_t
        })
        .collect()
}

fn main() {
    refdata::print_claims("Figure 13", refdata::FIG13);
    let mut checks = ShapeChecks::new();

    let mut table = Table::new(
        "Figure 13 — % tuples output vs % queries issued (hybrid, k = 256)",
        &["% queries", "Yahoo % tuples", "Adult % tuples"],
    );
    let yahoo_ds = yahoo::generate(SEED);
    let adult_ds = adult::generate(SEED);
    let yahoo_report = crawl(&Hybrid::new(), &yahoo_ds, K, SEED).report;
    let adult_report = crawl(&Hybrid::new(), &adult_ds, K, SEED).report;
    let y = deciles(&yahoo_report);
    let a = deciles(&adult_report);
    for decile in 0..=10 {
        table.row(&[
            &format!("{}%", decile * 10),
            &format!("{:.1}", y[decile]),
            &format!("{:.1}", a[decile]),
        ]);
    }
    table.print();
    table.write_csv("fig13_progressiveness");

    for (name, report) in [("Yahoo", &yahoo_report), ("Adult", &adult_report)] {
        let dev = report.progress_deviation();
        checks.check(
            &format!("{name}: near-linear progressiveness (max deviation {dev:.3} ≤ 0.15)"),
            dev <= 0.15,
        );
    }
    // Mid-crawl checkpoint: 50% of queries yields 35–65% of tuples.
    for (name, d) in [("Yahoo", &y), ("Adult", &a)] {
        checks.check(
            &format!("{name}: 50% queries → {:.0}% tuples (∈ [35, 65])", d[5]),
            (35.0..=65.0).contains(&d[5]),
        );
    }
    checks.finish();
}
