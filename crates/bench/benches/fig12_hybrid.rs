//! **Figure 12** — query cost of the hybrid algorithm on the two mixed
//! datasets (Yahoo and Adult), `k ∈ {64, 128, 256, 512, 1024}`.
//!
//! "There is no reported value for Yahoo at k = 64 because it has more
//! than 64 identical tuples … no algorithm can successfully extract the
//! dataset in full when k = 64." The synthetic Yahoo reproduces that gap;
//! Adult has a value at every k.

use hdc_bench::{crawl, crawl_expect_unsolvable, refdata, ShapeChecks, Table};
use hdc_core::{theory, Hybrid};
use hdc_data::{adult, yahoo, Dataset};

const SEED: u64 = 42;
const KS: [usize; 5] = [64, 128, 256, 512, 1024];

fn cat_domains(ds: &Dataset) -> Vec<u32> {
    ds.schema
        .cat_indices()
        .iter()
        .map(|&a| ds.schema.kind(a).domain_size().unwrap())
        .collect()
}

fn main() {
    refdata::print_claims("Figure 12", refdata::FIG12);
    let yahoo_ds = yahoo::generate(SEED);
    let adult_ds = adult::generate(SEED);
    let mut checks = ShapeChecks::new();

    let mut table = Table::new(
        "Figure 12 — hybrid cost vs k (Yahoo and Adult)",
        &[
            "k",
            "Yahoo",
            "Adult",
            "Yahoo bound (Lemma 9)",
            "Adult bound (Lemma 9)",
        ],
    );
    let mut yahoo_series: Vec<Option<u64>> = Vec::new();
    let mut adult_series = Vec::new();
    for k in KS {
        // Yahoo: infeasible at k = 64 (the >64-duplicate point).
        let yahoo_cell = if k == 64 {
            let partial = crawl_expect_unsolvable(&Hybrid::new(), &yahoo_ds, k, SEED);
            checks.check(
                "k=64: Yahoo correctly detected as uncrawlable",
                partial.tuples.len() < yahoo_ds.n(),
            );
            yahoo_series.push(None);
            "— (uncrawlable)".to_string()
        } else {
            let q = crawl(&Hybrid::new(), &yahoo_ds, k, SEED).report.queries;
            yahoo_series.push(Some(q));
            q.to_string()
        };
        let adult_q = crawl(&Hybrid::new(), &adult_ds, k, SEED).report.queries;
        adult_series.push(adult_q);

        let yahoo_bound = theory::hybrid_bound(
            &cat_domains(&yahoo_ds),
            yahoo_ds.schema.num_indices().len(),
            yahoo_ds.n() as f64,
            k as f64,
        );
        let adult_bound = theory::hybrid_bound(
            &cat_domains(&adult_ds),
            adult_ds.schema.num_indices().len(),
            adult_ds.n() as f64,
            k as f64,
        );
        table.row(&[
            &k,
            &yahoo_cell,
            &adult_q,
            &format!("{yahoo_bound:.0}"),
            &format!("{adult_bound:.0}"),
        ]);
        if let Some(q) = yahoo_series.last().unwrap() {
            checks.check(
                &format!("k={k}: Yahoo within Lemma 9"),
                (*q as f64) <= yahoo_bound,
            );
        }
        checks.check(
            &format!("k={k}: Adult within Lemma 9"),
            (adult_q as f64) <= adult_bound,
        );
    }
    table.print();
    table.write_csv("fig12_hybrid_cost_vs_k");

    // Cost decreases monotonically in k for both datasets.
    let yahoo_vals: Vec<u64> = yahoo_series.iter().flatten().copied().collect();
    checks.check(
        "Yahoo cost strictly decreases as k grows",
        yahoo_vals.windows(2).all(|w| w[1] < w[0]),
    );
    checks.check(
        "Adult cost strictly decreases as k grows",
        adult_series.windows(2).all(|w| w[1] < w[0]),
    );
    // The §1.2 headline: a few hundred queries at k = 1024 for ~70k tuples.
    let headline = *yahoo_vals.last().unwrap();
    checks.check(
        &format!("Yahoo at k=1024 needs only a few hundred queries (got {headline})"),
        headline < 1_000,
    );
    checks.finish();
}
