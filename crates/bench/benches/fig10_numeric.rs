//! **Figure 10** — query cost of the numeric algorithms (binary-shrink
//! vs. rank-shrink) on Adult-numeric.
//!
//! * (a) cost vs. `k` at `d = 6`, `k ∈ {64, 128, 256, 512, 1024}`;
//! * (b) cost vs. `d` at `k = 256`, `d ∈ {3..6}` taking the attributes
//!   with the most distinct values (Fnalwgt, Cap-gain, Cap-loss, Wrk-hr,
//!   Age, Edu-num — in that distinct-count order);
//! * (c) cost vs. `n` at `k = 256`, `d = 6`, Bernoulli samples of
//!   20%..100%.

use hdc_bench::{crawl, ratio, refdata, ShapeChecks, Table};
use hdc_core::{theory, BinaryShrink, RankShrink};
use hdc_data::{adult, ops};

const SEED: u64 = 42;

fn main() {
    refdata::print_claims("Figure 10", refdata::FIG10);
    let ds = adult::generate_numeric(SEED);
    let mut checks = ShapeChecks::new();

    // ---- (a) cost vs k -------------------------------------------------
    let mut table = Table::new(
        format!("Figure 10a — cost vs k ({}, d = 6)", ds.name),
        &[
            "k",
            "binary-shrink",
            "rank-shrink",
            "binary/rank",
            "ideal n/k",
            "rank bound 20dn/k",
        ],
    );
    let mut rank_by_k = Vec::new();
    for k in [64usize, 128, 256, 512, 1024] {
        let binary = crawl(&BinaryShrink::new(), &ds, k, SEED).report.queries;
        let rank = crawl(&RankShrink::new(), &ds, k, SEED).report.queries;
        let ideal = theory::ideal_cost(ds.n() as f64, k as f64);
        let bound = theory::rank_shrink_bound(ds.d(), ds.n() as f64, k as f64);
        table.row(&[
            &k,
            &binary,
            &rank,
            &ratio(binary, rank),
            &format!("{ideal:.0}"),
            &format!("{bound:.0}"),
        ]);
        checks.check(
            &format!("k={k}: rank-shrink beats binary-shrink"),
            rank < binary,
        );
        checks.check(
            &format!("k={k}: rank-shrink within the Lemma 2 bound"),
            (rank as f64) <= bound,
        );
        rank_by_k.push(rank);
    }
    table.print();
    table.write_csv("fig10a_cost_vs_k");
    // Inverse linearity in k: doubling k roughly halves the cost.
    for w in rank_by_k.windows(2) {
        let factor = w[0] as f64 / w[1] as f64;
        checks.check(
            &format!("doubling k scales rank-shrink by {factor:.2} (∈ [1.5, 2.8])"),
            (1.5..=2.8).contains(&factor),
        );
    }

    // ---- (b) cost vs d -------------------------------------------------
    let mut table = Table::new(
        format!("Figure 10b — cost vs d ({}, k = 256)", ds.name),
        &[
            "d",
            "attributes",
            "binary-shrink",
            "rank-shrink",
            "binary/rank",
            "3-way splits",
        ],
    );
    let mut rank_by_d = Vec::new();
    let mut three_way_share = Vec::new();
    for d in 3..=6 {
        let (proj, chosen) = ops::project_top_distinct(&ds, d);
        let names: Vec<&str> = chosen.iter().map(|&a| ds.schema.attr(a).name()).collect();
        let binary = crawl(&BinaryShrink::new(), &proj, 256, SEED).report.queries;
        let rank_report = crawl(&RankShrink::new(), &proj, 256, SEED).report;
        let rank = rank_report.queries;
        let splits = rank_report.metrics.two_way_splits + rank_report.metrics.three_way_splits;
        table.row(&[
            &d,
            &names.join("+"),
            &binary,
            &rank,
            &ratio(binary, rank),
            &rank_report.metrics.three_way_splits,
        ]);
        checks.check(
            &format!("d={d}: rank-shrink beats binary-shrink"),
            rank < binary,
        );
        rank_by_d.push(rank);
        three_way_share.push(rank_report.metrics.three_way_splits as f64 / splits.max(1) as f64);
    }
    table.print();
    table.write_csv("fig10b_cost_vs_d");
    // The paper explains the near-flat d curve by 3-way splits being
    // uncommon ("the presence of d in the final time complexity is due to
    // 3-way splits"). On the synthetic stand-in the zero-inflated capital
    // columns do force heavy pivots when they lead a projection (d = 3),
    // so the share varies; the claim that survives is that 3-way splits
    // never dominate and the d-curve stays flat (checked above).
    let max_share = three_way_share.iter().cloned().fold(0.0f64, f64::max);
    let full_d_share = *three_way_share.last().unwrap();
    checks.check(
        &format!(
            "3-way splits never dominate (max {:.0}% of splits ≤ 60%; {:.0}% at d = 6)",
            100.0 * max_share,
            100.0 * full_d_share
        ),
        max_share <= 0.60,
    );
    // Near-flat in d (the paper's "pleasant surprise"): growing d from 3
    // to 6 changes cost by far less than the 2× worst-case would.
    let (min_d, max_d) = (
        *rank_by_d.iter().min().unwrap() as f64,
        *rank_by_d.iter().max().unwrap() as f64,
    );
    checks.check(
        &format!(
            "rank-shrink near-flat in d (max/min = {:.2} ≤ 1.6)",
            max_d / min_d
        ),
        max_d / min_d <= 1.6,
    );

    // ---- (c) cost vs n -------------------------------------------------
    let mut table = Table::new(
        format!("Figure 10c — cost vs n ({}, k = 256, d = 6)", ds.name),
        &[
            "sample",
            "n",
            "binary-shrink",
            "rank-shrink",
            "rank / (n/k)",
        ],
    );
    let mut per_unit = Vec::new();
    for pct in [20u32, 40, 60, 80, 100] {
        let sample = if pct == 100 {
            ds.clone()
        } else {
            ops::sample_fraction(&ds, pct as f64 / 100.0, SEED + pct as u64)
        };
        let binary = crawl(&BinaryShrink::new(), &sample, 256, SEED)
            .report
            .queries;
        let rank = crawl(&RankShrink::new(), &sample, 256, SEED).report.queries;
        let unit = rank as f64 / (sample.n() as f64 / 256.0);
        table.row(&[
            &format!("{pct}%"),
            &sample.n(),
            &binary,
            &rank,
            &format!("{unit:.2}"),
        ]);
        checks.check(
            &format!("n={pct}%: rank-shrink beats binary-shrink"),
            rank < binary,
        );
        per_unit.push(unit);
    }
    table.print();
    table.write_csv("fig10c_cost_vs_n");
    // Linear in n: cost per (n/k) unit stays within a narrow band.
    let (lo, hi) = (
        per_unit.iter().cloned().fold(f64::INFINITY, f64::min),
        per_unit.iter().cloned().fold(0.0f64, f64::max),
    );
    checks.check(
        &format!(
            "rank-shrink linear in n (unit-cost band {:.2}..{:.2}, ratio ≤ 1.5)",
            lo, hi
        ),
        hi / lo <= 1.5,
    );

    checks.finish();
}
