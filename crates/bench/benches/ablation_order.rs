//! **Ablation** — attribute ordering and §1.3 dependency pruning.
//!
//! The paper fixes an attribute ordering per dataset (Figure 9,
//! left-to-right) and notes that all algorithms consume attributes in
//! that order. This ablation quantifies how much the ordering matters for
//! lazy-slice-cover and hybrid (ascending vs. descending domain size),
//! and how much the §1.3 validity-oracle heuristic saves on top of the
//! best configuration.

use hdc_bench::{crawl, ShapeChecks, Table};
use hdc_core::{DatasetOracle, Hybrid, PairRuleOracle, SliceCover};
use hdc_data::{nsf, ops, yahoo, Dataset};

const SEED: u64 = 42;
const K: usize = 256;

/// Reorders all attributes of a dataset by the given comparator on
/// (domain-ish size, index).
fn ordered_by_domain(ds: &Dataset, ascending: bool) -> Dataset {
    let mut idx: Vec<usize> = (0..ds.d()).collect();
    let size_of = |a: usize| ds.distinct_count(a);
    idx.sort_by_key(|&a| (size_of(a), a));
    if !ascending {
        idx.reverse();
    }
    ops::project(ds, &idx)
}

fn main() {
    let mut checks = ShapeChecks::new();

    // ---- lazy-slice-cover orderings on NSF (d = 6 projection) ----------
    let (nsf6, _) = ops::project_top_distinct(&nsf::generate(SEED), 6);
    let mut table = Table::new(
        "Ablation — attribute order, lazy-slice-cover (NSF d = 6, k = 256)",
        &["ordering", "queries"],
    );
    let figure9 = crawl(&SliceCover::lazy(), &nsf6, K, SEED).report.queries;
    let asc = crawl(
        &SliceCover::lazy(),
        &ordered_by_domain(&nsf6, true),
        K,
        SEED,
    )
    .report
    .queries;
    let desc = crawl(
        &SliceCover::lazy(),
        &ordered_by_domain(&nsf6, false),
        K,
        SEED,
    )
    .report
    .queries;
    table.row(&[&"Figure 9 (paper)", &figure9]);
    table.row(&[&"ascending domain size", &asc]);
    table.row(&[&"descending domain size", &desc]);
    table.print();
    table.write_csv("ablation_order_nsf");
    // Small-domain-first keeps early tree levels narrow, so descending
    // should be the costly direction.
    checks.check(
        &format!("ascending order beats descending ({asc} < {desc})"),
        asc < desc,
    );
    checks.check(
        &format!("paper order (small domains first) is near the ascending optimum ({figure9} ≤ 1.2×{asc})"),
        (figure9 as f64) <= 1.2 * asc as f64,
    );

    // ---- §1.3 pruning where it bites: lazy-slice-cover on NSF ----------
    // Deep categorical trees issue node queries that pin several
    // attributes; combinations absent from the data are provably empty
    // and an oracle answers them for free.
    let mut table = Table::new(
        "Ablation — §1.3 dependency pruning, lazy-slice-cover (NSF d = 6, k = 256)",
        &["configuration", "queries", "pruned (free)"],
    );
    let no_oracle = crawl(&SliceCover::lazy(), &nsf6, K, SEED).report;
    table.row(&[&"no oracle", &no_oracle.queries, &no_oracle.pruned]);
    let nsf_oracle = DatasetOracle::new(nsf6.tuples.clone());
    let with_oracle = {
        let crawler = SliceCover::lazy_with_oracle(&nsf_oracle);
        crawl(&crawler, &nsf6, K, SEED).report
    };
    table.row(&[&"perfect oracle", &with_oracle.queries, &with_oracle.pruned]);
    table.print();
    table.write_csv("ablation_oracle_nsf");
    checks.check(
        &format!(
            "NSF: oracle saves queries ({} < {}, {} pruned for free)",
            with_oracle.queries, no_oracle.queries, with_oracle.pruned
        ),
        with_oracle.queries < no_oracle.queries && with_oracle.pruned > 0,
    );

    // ---- hybrid orderings + dependency oracles on Yahoo ----------------
    let yahoo_ds = yahoo::generate(SEED);
    let mut table = Table::new(
        "Ablation — hybrid on Yahoo (k = 256): ordering and §1.3 pruning",
        &["configuration", "queries", "pruned (free)"],
    );
    let base = crawl(&Hybrid::new(), &yahoo_ds, K, SEED).report;
    table.row(&[&"paper order, no oracle", &base.queries, &base.pruned]);

    // Make → Body-style dependency rules distilled from the data
    // (the paper's §1.3 example: "BMW does not sell trucks").
    let make_body = PairRuleOracle::from_tuples(2, 1, &yahoo_ds.tuples);
    let with_rules = {
        let crawler = Hybrid::with_oracle(&make_body);
        crawl(&crawler, &yahoo_ds, K, SEED).report
    };
    table.row(&[
        &"paper order + make→body rules",
        &with_rules.queries,
        &with_rules.pruned,
    ]);

    // Perfect dependency knowledge: the upper bound on what §1.3 can save.
    let perfect = DatasetOracle::new(yahoo_ds.tuples.clone());
    let with_perfect = {
        let crawler = Hybrid::with_oracle(&perfect);
        crawl(&crawler, &yahoo_ds, K, SEED).report
    };
    table.row(&[
        &"paper order + perfect oracle",
        &with_perfect.queries,
        &with_perfect.pruned,
    ]);
    table.print();
    table.write_csv("ablation_order_yahoo");

    checks.check(
        &format!(
            "pair rules never increase cost ({} ≤ {})",
            with_rules.queries, base.queries
        ),
        with_rules.queries <= base.queries,
    );
    checks.check(
        &format!(
            "perfect oracle dominates pair rules ({} ≤ {})",
            with_perfect.queries, with_rules.queries
        ),
        with_perfect.queries <= with_rules.queries,
    );
    // Honest negative result: on Yahoo's shallow 3-level categorical tree,
    // lazy slice answers already cover every provably-empty combination,
    // so the oracle finds nothing left to prune — §1.3 pruning matters on
    // deep trees (see the NSF table above), not on wide shallow ones.
    checks.check(
        &format!(
            "Yahoo: hybrid+lazy already avoids empty queries (pruned = {}, cost unchanged)",
            with_perfect.pruned
        ),
        with_perfect.queries == base.queries,
    );
    checks.finish();
}
