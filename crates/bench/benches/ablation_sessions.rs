//! **Ablation** — multi-session (sharded) crawling.
//!
//! The paper's cost metric is per-client query count because servers
//! meter each client identity (§1.1). This ablation quantifies the
//! library's multi-identity extension: partitioning the widest
//! categorical domain round-robin across `s` concurrent sessions divides
//! the per-identity load by ≈ s while costing only a small total
//! overhead (per-session slice tables), and never changes the extracted
//! bag.

use hdc_bench::{ShapeChecks, Table};
use hdc_core::{verify_complete, Sharded};
use hdc_data::{adult, yahoo};
use hdc_server::{HiddenDbServer, ServerConfig};

const SEED: u64 = 42;
const K: usize = 256;

fn main() {
    let mut checks = ShapeChecks::new();
    for ds in [yahoo::generate(SEED), adult::generate(SEED)] {
        let factory = |_s: usize| {
            HiddenDbServer::new(
                ds.schema.clone(),
                ds.tuples.clone(),
                ServerConfig { k: K, seed: 9 },
            )
            .expect("valid database")
        };
        let mut table = Table::new(
            format!("Ablation — sessions on {} (k = {K})", ds.name),
            &[
                "sessions",
                "total queries",
                "busiest session",
                "speedup",
                "overhead",
            ],
        );
        let single = Sharded::new(1).crawl(factory).expect("crawl succeeds");
        verify_complete(&ds.tuples, &single.merged).expect("complete");
        let base = single.merged.queries;
        let mut busiest = Vec::new();
        for sessions in [1usize, 2, 4, 8, 16] {
            let report = Sharded::new(sessions)
                .crawl(factory)
                .expect("crawl succeeds");
            verify_complete(&ds.tuples, &report.merged).expect("complete");
            let max = report.max_session_queries();
            table.row(&[
                &sessions,
                &report.merged.queries,
                &max,
                &format!("{:.2}×", base as f64 / max as f64),
                &format!("{:.2}×", report.merged.queries as f64 / base as f64),
            ]);
            busiest.push(max);
        }
        table.print();
        table.write_csv(&format!("ablation_sessions_{}", ds.name.to_lowercase()));

        checks.check(
            &format!(
                "{}: busiest session shrinks monotonically with sessions",
                ds.name
            ),
            busiest.windows(2).all(|w| w[1] <= w[0]),
        );
        let eight = busiest[3];
        if ds.name == "Yahoo" {
            // Make (85 values, moderate skew) partitions well.
            checks.check(
                &format!(
                    "{}: 8 sessions cut the per-identity load ≥ 3× ({base} → {eight})",
                    ds.name
                ),
                (eight as f64) <= base as f64 / 3.0,
            );
        } else {
            // Adult partitions on Country, whose value 0 holds ~90% of the
            // tuples — value-sharding cannot split that shard, so gains
            // are bounded by the heaviest value. Honest expectation:
            // sharding still never hurts.
            checks.check(
                &format!(
                    "{}: sharding never increases the per-identity load ({base} → {eight};                      bounded by the dominant Country value)",
                    ds.name
                ),
                eight <= base,
            );
        }
    }
    checks.finish();
}
