//! **Theorem 3** — the numeric lower bound, verified empirically.
//!
//! The Figure 7 construction (m groups of k diagonal duplicates plus d
//! non-diagonal satellites) forces any algorithm to spend ≥ d·m queries.
//! Running rank-shrink on the family shows its measured cost sandwiched
//! between the lower bound and the Lemma 2 upper bound `O(d·n/k)` —
//! asymptotic optimality made visible.

use hdc_bench::{crawl, refdata, ShapeChecks, Table};
use hdc_core::{theory, RankShrink};
use hdc_data::hard;

const SEED: u64 = 42;

fn main() {
    refdata::print_claims("Theorem 3", refdata::THM3);
    let mut checks = ShapeChecks::new();

    let mut table = Table::new(
        "Theorem 3 — hard numeric instances (rank-shrink)",
        &[
            "d",
            "k",
            "m",
            "n",
            "lower d·m",
            "measured",
            "upper 20·d·n/k",
            "measured/lower",
        ],
    );
    // Sweep m at fixed (d, k), then d at fixed (k, m), then k.
    let cases: &[(usize, usize, usize)] = &[
        (4, 16, 25),
        (4, 16, 50),
        (4, 16, 100),
        (4, 16, 200),
        (2, 16, 100),
        (8, 16, 100),
        (16, 16, 100),
        (4, 8, 100),
        (4, 32, 100),
        (4, 64, 100),
    ];
    let mut measured_over_lower = Vec::new();
    for &(d, k, m) in cases {
        let ds = hard::numeric_hard(k, d, m);
        let report = crawl(&RankShrink::new(), &ds, k, SEED).report;
        let lower = theory::numeric_lower_bound(d, m);
        let upper = theory::rank_shrink_bound(d, ds.n() as f64, k as f64);
        let q = report.queries as f64;
        table.row(&[
            &d,
            &k,
            &m,
            &ds.n(),
            &format!("{lower:.0}"),
            &report.queries,
            &format!("{upper:.0}"),
            &format!("{:.2}", q / lower),
        ]);
        checks.check(
            &format!("d={d} k={k} m={m}: measured ≥ lower bound"),
            q >= lower,
        );
        checks.check(
            &format!("d={d} k={k} m={m}: measured ≤ Lemma 2 upper bound"),
            q <= upper,
        );
        measured_over_lower.push(q / lower);
    }
    table.print();
    table.write_csv("thm3_lower_numeric");

    // Optimality: the measured/lower ratio stays bounded by a small
    // constant across the whole family (no asymptotic gap).
    let max_ratio = measured_over_lower.iter().cloned().fold(0.0f64, f64::max);
    checks.check(
        &format!("measured/lower bounded by a constant (max = {max_ratio:.2} ≤ 8)"),
        max_ratio <= 8.0,
    );
    checks.finish();
}
