//! **Figure 9** — "Attributes and their domain sizes of the datasets
//! deployed."
//!
//! Regenerates the dataset table: for each synthetic stand-in (Yahoo,
//! NSF, Adult, Adult-numeric) the per-attribute domain sizes exactly as
//! the paper lists them, plus the observed distinct counts (which must
//! equal the domain sizes for categorical attributes — the Figure 11b
//! construction depends on it) and the feasibility summary.

use hdc_bench::{ShapeChecks, Table};
use hdc_data::{adult, nsf, yahoo, DatasetStats};

fn main() {
    let datasets = vec![
        yahoo::generate(7),
        nsf::generate(7),
        adult::generate(7),
        adult::generate_numeric(7),
    ];

    let mut checks = ShapeChecks::new();
    for ds in &datasets {
        let stats = DatasetStats::compute(ds);
        let mut table = Table::new(
            format!(
                "Figure 9 — {} (n = {}, d = {})",
                stats.name,
                stats.n,
                ds.d()
            ),
            &["attribute", "domain (Fig 9 cell)", "distinct observed"],
        );
        for a in &stats.attrs {
            table.row(&[&a.name, &a.figure9_cell(), &a.distinct]);
        }
        table.print();
        table.write_csv(&format!(
            "fig09_{}",
            stats.name.to_lowercase().replace('-', "_")
        ));
        println!(
            "max duplicate multiplicity = {}  →  crawlable for k ≥ {}",
            stats.max_multiplicity,
            stats.min_feasible_k()
        );

        // Categorical distinct counts must equal the Figure 9 domains.
        let all_realized = stats
            .attrs
            .iter()
            .filter(|a| a.kind.is_categorical())
            .all(|a| Some(a.distinct as u32) == a.kind.domain_size());
        checks.check(
            &format!("{}: every categorical domain value is realized", stats.name),
            all_realized,
        );
    }

    // Paper cardinalities.
    let mut checks2 = vec![
        ("Yahoo n = 69,768", datasets[0].n() == 69_768),
        ("NSF n = 47,816", datasets[1].n() == 47_816),
        ("Adult n = 45,222", datasets[2].n() == 45_222),
        (
            "Adult-numeric same cardinality as Adult",
            datasets[3].n() == datasets[2].n(),
        ),
        (
            "Yahoo has >64 identical tuples (Figure 12 gap at k = 64)",
            DatasetStats::compute(&datasets[0]).max_multiplicity > 64,
        ),
        (
            "Adult crawlable at k = 64 (Figure 12 has an Adult value there)",
            DatasetStats::compute(&datasets[2]).max_multiplicity <= 64,
        ),
    ];
    for (label, ok) in checks2.drain(..) {
        checks.check(label, ok);
    }
    checks.finish();
}
