//! Criterion micro-benchmarks for the substrate: server query latency
//! (scan vs. probe paths) and end-to-end crawl throughput on scaled-down
//! datasets. These guard the simulator's performance — the figure
//! benchmarks replay up to ~10⁵ queries per data point, so per-query
//! latency is what makes the whole harness tractable.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hdc_bench::serve;
use hdc_core::{Crawler, Hybrid, RankShrink, SliceCover};
use hdc_data::{adult, nsf, ops, yahoo};
use hdc_types::{HiddenDatabase, Predicate, Query};

fn server_query_latency(c: &mut Criterion) {
    let ds = nsf::generate(1);
    let mut db = serve(&ds, 256, 1);
    let mut group = c.benchmark_group("server_query");

    // Unselective: answered by the priority-ordered scan with early exit.
    let root = Query::any(ds.d());
    group.bench_function("scan_root_overflow", |b| {
        b.iter(|| db.query(&root).unwrap().tuples.len())
    });

    // Highly selective: answered by an index probe on PI-name.
    let probe = Query::any(ds.d()).with_pred(8, Predicate::Eq(17));
    group.bench_function("probe_selective_eq", |b| {
        b.iter(|| db.query(&probe).unwrap().tuples.len())
    });

    // Slice query on a mid-size domain (Prog-mgr).
    let slice = Query::any(ds.d()).with_pred(5, Predicate::Eq(3));
    group.bench_function("probe_slice_query", |b| {
        b.iter(|| db.query(&slice).unwrap().tuples.len())
    });

    // Numeric range probe on the Yahoo mileage attribute.
    let yds = yahoo::generate_scaled(10_000, 1);
    let mut ydb = serve(&yds, 256, 1);
    let range = Query::any(yds.d()).with_pred(
        3,
        Predicate::Range {
            lo: 10_000,
            hi: 20_000,
        },
    );
    group.bench_function("probe_numeric_range", |b| {
        b.iter(|| ydb.query(&range).unwrap().tuples.len())
    });
    group.finish();
}

fn crawl_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("crawl");
    group.sample_size(10);

    let adult10 = ops::sample_fraction(&adult::generate_numeric(1), 0.1, 9);
    group.bench_function("rank_shrink_adult10pct_k256", |b| {
        b.iter_batched(
            || serve(&adult10, 256, 1),
            |mut db| RankShrink::new().crawl(&mut db).unwrap().queries,
            BatchSize::LargeInput,
        )
    });

    let (nsf5, _) = ops::project_top_distinct(&nsf::generate(1), 5);
    let nsf5 = ops::sample_fraction(&nsf5, 0.1, 9);
    group.bench_function("lazy_slice_cover_nsf10pct_k256", |b| {
        b.iter_batched(
            || serve(&nsf5, 256, 1),
            |mut db| SliceCover::lazy().crawl(&mut db).unwrap().queries,
            BatchSize::LargeInput,
        )
    });

    let yahoo10 = ops::sample_fraction(&yahoo::generate(1), 0.1, 9);
    group.bench_function("hybrid_yahoo10pct_k256", |b| {
        b.iter_batched(
            || serve(&yahoo10, 256, 1),
            |mut db| Hybrid::new().crawl(&mut db).unwrap().queries,
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn server_construction(c: &mut Criterion) {
    let ds = adult::generate_numeric(1);
    let mut group = c.benchmark_group("server_build");
    group.sample_size(10);
    group.bench_function("index_build_adult_full", |b| {
        b.iter(|| serve(&ds, 256, 1).n())
    });
    group.finish();
}

criterion_group!(
    benches,
    server_query_latency,
    crawl_throughput,
    server_construction
);
criterion_main!(benches);
