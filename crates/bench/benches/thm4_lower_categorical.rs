//! **Theorem 4** — the categorical lower bound, verified empirically.
//!
//! The Figure 8 construction (d = 2k attributes of domain size U, one
//! off-diagonal tuple per group × attribute) forces any algorithm to
//! spend Ω(d·U²) queries when the side conditions hold
//! (u ≥ 3, k ≥ 3, d·U² ≤ 2^{d/4}). Slice-cover's Lemma 4 bound
//! `Σ Ui + (n/k)·Σ min{Ui, n/k}` = `d·U + 2d·U·min(U, 2U)` = Θ(d·U²)
//! shows the two meet within constant factors.

use hdc_bench::{crawl, refdata, ShapeChecks, Table};
use hdc_core::{theory, SliceCover};
use hdc_data::hard;

const SEED: u64 = 42;

fn main() {
    refdata::print_claims("Theorem 4", refdata::THM4);
    let mut checks = ShapeChecks::new();

    let mut table = Table::new(
        "Theorem 4 — hard categorical instances (slice-cover / lazy)",
        &[
            "d",
            "k",
            "U",
            "n",
            "conditions",
            "lower d·U²/8",
            "slice-cover",
            "lazy",
            "upper Lemma 4",
        ],
    );
    // (k, U) sweeps; the last rows satisfy the theorem's side conditions.
    let cases: &[(usize, u32)] = &[
        (3, 3),
        (4, 4),
        (6, 6),
        (8, 8),
        (10, 10),
        (20, 3),
        (26, 10),
        (30, 16),
    ];
    for &(k, u) in cases {
        let d = 2 * k;
        let ds = hard::categorical_hard(k, u);
        let eager = crawl(&SliceCover::eager(), &ds, k, SEED).report.queries;
        let lazy = crawl(&SliceCover::lazy(), &ds, k, SEED).report.queries;
        let lower = theory::categorical_lower_bound(d, u);
        let upper = theory::slice_cover_bound(&vec![u; d], ds.n() as f64, k as f64);
        let conds = hard::categorical_hard_conditions_hold(k, u);
        table.row(&[
            &d,
            &k,
            &u,
            &ds.n(),
            &(if conds { "hold" } else { "—" }),
            &format!("{lower:.0}"),
            &eager,
            &lazy,
            &format!("{upper:.0}"),
        ]);
        checks.check(
            &format!("k={k} U={u}: both variants within Lemma 4"),
            (eager as f64) <= upper && (lazy as f64) <= upper,
        );
        if conds {
            // Where the proof applies, no algorithm beats Ω(d·U²); our
            // measured (optimal-within-constants) cost must exceed the
            // lower-bound magnitude.
            checks.check(
                &format!("k={k} U={u}: measured ≥ d·U²/8 where the theorem applies"),
                (eager as f64) >= lower && (lazy as f64) >= lower,
            );
        }
    }
    table.print();
    table.write_csv("thm4_lower_categorical");

    // The structural insight behind the bound (§1.2): once cat ≥ 2, the
    // per-attribute cost acquires a multiplicative (n/k)·min{U, n/k} term.
    // Visible as super-linear growth of cost in U at fixed k.
    let small = crawl(&SliceCover::eager(), &hard::categorical_hard(6, 4), 6, SEED)
        .report
        .queries as f64;
    let large = crawl(
        &SliceCover::eager(),
        &hard::categorical_hard(6, 16),
        6,
        SEED,
    )
    .report
    .queries as f64;
    checks.check(
        &format!(
            "4× larger U costs {:.1}× more (> 6× — super-linear, the cat ≥ 2 leap)",
            large / small
        ),
        large / small > 6.0,
    );
    checks.finish();
}
