//! **Figure 11** — query cost of the categorical algorithms (DFS,
//! slice-cover, lazy-slice-cover) on NSF.
//!
//! * (a) cost vs. `k` at `d = 6`, `k ∈ {64, 128, 256, 512, 1024}`;
//! * (b) cost vs. `d` at `k = 256`, `d ∈ {5..9}` taking the attributes
//!   with the most distinct values;
//! * (c) cost vs. `n` at `k = 256`, `d = 9`, samples of 20%..100%.
//!
//! The paper's qualitative result (all three panels, log-scale y): eager
//! slice-cover is the *worst* (its `Σ Ui` preprocessing dominates — being
//! worst-case-optimal does not help on benign data), DFS is in between,
//! and lazy-slice-cover is the clear winner.

use hdc_bench::{crawl, ratio, refdata, ShapeChecks, Table};
use hdc_core::{theory, Dfs, SliceCover};
use hdc_data::{nsf, ops, Dataset};

const SEED: u64 = 42;

fn run_all(ds: &Dataset, k: usize) -> (u64, u64, u64) {
    let dfs = crawl(&Dfs::new(), ds, k, SEED).report.queries;
    let eager = crawl(&SliceCover::eager(), ds, k, SEED).report.queries;
    let lazy = crawl(&SliceCover::lazy(), ds, k, SEED).report.queries;
    (dfs, eager, lazy)
}

fn domain_sizes(ds: &Dataset) -> Vec<u32> {
    (0..ds.d())
        .map(|a| ds.schema.kind(a).domain_size().unwrap())
        .collect()
}

fn main() {
    refdata::print_claims("Figure 11", refdata::FIG11);
    let full = nsf::generate(SEED);
    let mut checks = ShapeChecks::new();

    // ---- (a) cost vs k (d = 6 projection, per the figure caption) ------
    let (ds6, chosen) = ops::project_top_distinct(&full, 6);
    println!(
        "\nd = 6 projection keeps: {:?}",
        chosen
            .iter()
            .map(|&a| full.schema.attr(a).name())
            .collect::<Vec<_>>()
    );
    let mut table = Table::new(
        "Figure 11a — cost vs k (NSF, d = 6)",
        &[
            "k",
            "dfs",
            "slice-cover",
            "lazy-slice-cover",
            "dfs/lazy",
            "eager/lazy",
            "Lemma 4 bound",
        ],
    );
    for k in [64usize, 128, 256, 512, 1024] {
        let (dfs, eager, lazy) = run_all(&ds6, k);
        let bound = theory::slice_cover_bound(&domain_sizes(&ds6), ds6.n() as f64, k as f64);
        table.row(&[
            &k,
            &dfs,
            &eager,
            &lazy,
            &ratio(dfs, lazy),
            &ratio(eager, lazy),
            &format!("{bound:.0}"),
        ]);
        // At k = 64 every slice ends up needed, so lazy degenerates to
        // exactly the eager cost (by construction it never exceeds it).
        checks.check(
            &format!("k={k}: lazy is the clear winner"),
            lazy < dfs && lazy <= eager,
        );
        // In the paper's plot DFS starts above slice-cover at k = 64 and
        // the curves cross by k ≈ 128; from there the flat ΣUi floor makes
        // eager slice-cover the worst.
        if k >= 128 {
            checks.check(
                &format!("k={k}: eager slice-cover is the worst"),
                eager >= dfs,
            );
        } else {
            checks.check(
                &format!("k={k}: DFS is the worst at small k (crossover)"),
                dfs >= eager,
            );
        }
        checks.check(
            &format!("k={k}: both slice variants within Lemma 4"),
            (eager as f64) <= bound && (lazy as f64) <= bound,
        );
    }
    table.print();
    table.write_csv("fig11a_cost_vs_k");

    // ---- (b) cost vs d (k = 256) ---------------------------------------
    let mut table = Table::new(
        "Figure 11b — cost vs d (NSF, k = 256)",
        &["d", "attributes", "dfs", "slice-cover", "lazy-slice-cover"],
    );
    for d in 5..=9 {
        let (proj, chosen) = ops::project_top_distinct(&full, d);
        let names: Vec<&str> = chosen.iter().map(|&a| full.schema.attr(a).name()).collect();
        let (dfs, eager, lazy) = run_all(&proj, 256);
        table.row(&[&d, &names.join("+"), &dfs, &eager, &lazy]);
        checks.check(&format!("d={d}: lazy wins"), lazy < dfs && lazy < eager);
    }
    table.print();
    table.write_csv("fig11b_cost_vs_d");

    // ---- (c) cost vs n (k = 256, d = 9) ---------------------------------
    let mut table = Table::new(
        "Figure 11c — cost vs n (NSF, k = 256, d = 9)",
        &["sample", "n", "dfs", "slice-cover", "lazy-slice-cover"],
    );
    let mut eager_series = Vec::new();
    for pct in [20u32, 40, 60, 80, 100] {
        let sample = if pct == 100 {
            full.clone()
        } else {
            ops::sample_fraction(&full, pct as f64 / 100.0, SEED + pct as u64)
        };
        let (dfs, eager, lazy) = run_all(&sample, 256);
        table.row(&[&format!("{pct}%"), &sample.n(), &dfs, &eager, &lazy]);
        checks.check(&format!("n={pct}%: lazy wins"), lazy < dfs && lazy < eager);
        eager_series.push(eager);
    }
    table.print();
    table.write_csv("fig11c_cost_vs_n");
    // Eager slice-cover is dominated by the ΣUi preprocessing, so its
    // curve is nearly flat in n (visible in the paper's log-scale plot).
    let (lo, hi) = (
        *eager_series.iter().min().unwrap() as f64,
        *eager_series.iter().max().unwrap() as f64,
    );
    checks.check(
        &format!(
            "eager slice-cover nearly flat in n (max/min = {:.2})",
            hi / lo
        ),
        hi / lo <= 1.3,
    );

    checks.finish();
}
