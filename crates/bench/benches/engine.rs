//! Criterion micro-benchmarks for the columnar query engine: per-strategy
//! latency (planned and forced) against the preserved seed evaluator, on
//! the workload shapes the planner distinguishes. `bench_engine` (the
//! `BENCH_pr1.json` emitter) is the cross-PR record; this target is for
//! interactive `cargo bench -p hdc-bench --bench engine` digging.

use criterion::{criterion_group, criterion_main, Criterion};
use hdc_bench::engine_workload::{rows, schema, workloads};
use hdc_server::{HiddenDbServer, ServerConfig, Strategy};
use hdc_types::{HiddenDatabase, Predicate, Query};

const N: usize = 100_000;
const K: usize = 256;

fn server() -> HiddenDbServer {
    HiddenDbServer::new(schema(), rows(N), ServerConfig { k: K, seed: 0xbe7c }).unwrap()
}

fn planned_paths(c: &mut Criterion) {
    let mut db = server();
    let legacy = db.legacy_evaluator();
    let mut group = c.benchmark_group("engine_planned");
    for (name, q) in workloads() {
        group.bench_function(name, |b| b.iter(|| db.query(&q).unwrap().tuples.len()));
        group.bench_function(format!("legacy_{name}"), |b| {
            b.iter(|| legacy.evaluate(&q).tuples.len())
        });
    }
    group.finish();
}

fn forced_strategies(c: &mut Criterion) {
    let db = server();
    let mut group = c.benchmark_group("engine_forced");
    // A conjunction all three strategies answer identically; forcing each
    // shows their relative cost on the same shape.
    let q = Query::any(6)
        .with_pred(1, Predicate::Eq(17))
        .with_pred(3, Predicate::Range { lo: 0, hi: 99_999 });
    for strategy in [Strategy::Scan, Strategy::Probe, Strategy::Intersect] {
        group.bench_function(format!("{strategy:?}"), |b| {
            b.iter(|| db.query_with_strategy(&q, strategy).unwrap().tuples.len())
        });
    }
    group.finish();
}

criterion_group!(benches, planned_paths, forced_strategies);
criterion_main!(benches);
