//! **Ablation** — rank-shrink's split constants.
//!
//! The paper fixes the pivot at the `⌈k/2⌉`-th returned tuple and the
//! 3-way threshold at `k/4`; the proofs of Lemmas 1–2 need exactly those
//! to guarantee ≥ k/4 tuples per side. This ablation sweeps both knobs on
//! Adult-numeric (completeness is preserved for any setting — a fallback
//! forces progress) to show the paper's constants sit in the flat optimum
//! of the cost landscape, i.e. the design choice is robust, not finicky.

use hdc_bench::{crawl, ShapeChecks, Table};
use hdc_core::RankShrink;
use hdc_data::adult;

const SEED: u64 = 42;
const K: usize = 256;

fn main() {
    let ds = adult::generate_numeric(SEED);
    let mut checks = ShapeChecks::new();
    println!(
        "\nrank-shrink parameter ablation on {} (k = {K}, n = {})",
        ds.name,
        ds.n()
    );

    // ---- pivot fraction sweep (heavy threshold at the paper's 1/4) -----
    let mut table = Table::new(
        "Ablation — pivot fraction (heavy threshold = 0.25)",
        &["pivot_frac", "queries", "vs paper (0.50)"],
    );
    let paper_cost = crawl(&RankShrink::new(), &ds, K, SEED).report.queries;
    let mut pivot_costs = Vec::new();
    for pivot in [0.1f64, 0.25, 0.5, 0.75, 0.9] {
        let crawler = RankShrink::with_params(pivot, 0.25);
        let q = crawl(&crawler, &ds, K, SEED).report.queries;
        table.row(&[
            &format!("{pivot:.2}"),
            &q,
            &format!(
                "{:+.1}%",
                100.0 * (q as f64 - paper_cost as f64) / paper_cost as f64
            ),
        ]);
        pivot_costs.push((pivot, q));
    }
    table.print();
    table.write_csv("ablation_pivot_frac");
    // The median pivot (0.5) should be at or near the sweep minimum:
    // within 10% of the best observed setting.
    let best = pivot_costs.iter().map(|&(_, q)| q).min().unwrap() as f64;
    checks.check(
        &format!(
            "paper pivot 0.5 within 10% of the sweep optimum ({} vs {})",
            paper_cost, best
        ),
        (paper_cost as f64) <= 1.10 * best,
    );
    // Extreme pivots (0.1 / 0.9) cost more: unbalanced splits.
    let extreme = pivot_costs[0].1.max(pivot_costs[4].1);
    checks.check(
        &format!("extreme pivots cost more than the median ({extreme} > {paper_cost})"),
        extreme > paper_cost,
    );

    // ---- heavy-threshold sweep (pivot at the paper's 1/2) --------------
    let mut table = Table::new(
        "Ablation — 3-way heavy threshold (pivot = 0.5)",
        &["heavy_frac", "queries", "vs paper (0.25)"],
    );
    for heavy in [0.05f64, 0.125, 0.25, 0.5, 0.75] {
        let crawler = RankShrink::with_params(0.5, heavy);
        let q = crawl(&crawler, &ds, K, SEED).report.queries;
        table.row(&[
            &format!("{heavy:.3}"),
            &q,
            &format!(
                "{:+.1}%",
                100.0 * (q as f64 - paper_cost as f64) / paper_cost as f64
            ),
        ]);
    }
    table.print();
    table.write_csv("ablation_heavy_frac");

    // ---- duplicate-heavy data: where the 3-way split earns its keep ----
    // Wrk-hr puts ~46% of its mass on the single value 40, so pivots land
    // on a heavy value constantly; Fnalwgt keeps point multiplicity ≤ k
    // (the projection stays crawlable). A threshold that almost never
    // allows 3-way splits keeps attempting 2-way splits around the spike.
    let mut table = Table::new(
        "Ablation — heavy threshold on the spiked projection (Wrk-hr, Fnalwgt)",
        &["heavy_frac", "queries"],
    );
    let zero_heavy = hdc_data::ops::project(&ds, &[2, 5]); // Wrk-hr, Fnalwgt
    let mut dup_costs = Vec::new();
    for heavy in [0.125f64, 0.25, 0.9] {
        let crawler = RankShrink::with_params(0.5, heavy);
        let q = crawl(&crawler, &zero_heavy, K, SEED).report.queries;
        table.row(&[&format!("{heavy:.3}"), &q]);
        dup_costs.push(q);
    }
    table.print();
    table.write_csv("ablation_heavy_frac_duplicates");
    checks.check(
        &format!(
            "paper threshold no worse than the degenerate 0.9 on duplicate-heavy data \
             ({} ≤ {})",
            dup_costs[1], dup_costs[2]
        ),
        dup_costs[1] <= dup_costs[2],
    );

    checks.finish();
}
