//! Telemetry-layer benchmark + `BENCH_pr9.json` emitter.
//!
//! PR 9 threads live instrumentation through the whole stack: session
//! counters and batch histograms, engine evaluate latency by plan,
//! wire client/server request latency, and a `GET /metrics` endpoint
//! served from the crawl's own wire server. This bench quantifies the
//! three claims behind shipping that layer:
//!
//! 1. **Instrumentation is near-free.** A sharded crawl with the
//!    registry enabled must stay within [`MAX_OVERHEAD_PCT`] of the
//!    same crawl with the registry disabled (best-of-N walls, asserted
//!    at record time in the full run; `--quick` records without
//!    asserting — CI machines are too noisy for a 3% gate).
//! 2. **Histogram merging is cheap enough to ignore.** Folding
//!    thousands of shard-level snapshots into one histogram costs
//!    nanoseconds per merge, so cross-shard aggregation never shows up
//!    in a crawl profile.
//! 3. **`/metrics` stays responsive under load.** Scraping the wire
//!    server while a sharded crawl hammers it over loopback answers in
//!    milliseconds, with well-formed Prometheus text carrying non-zero
//!    request counters.
//!
//! Output: `BENCH_pr9.json` (override path with `BENCH_OUT`; `--quick`
//! runs a CI-sized subset).

use std::io::BufReader;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use hdc_core::Crawl;
use hdc_net::{http, HttpConnector, ServeOptions, WireServer};
use hdc_server::{ServerConfig, SharedServer};

const SEED: u64 = 0x9b5;
const K: usize = 128;
/// Overhead gate for claim 1, in percent of the disabled wall.
const MAX_OVERHEAD_PCT: f64 = 3.0;

/// Best-of-`runs` wall time of a sharded in-process crawl, ms. Min is
/// the noise-robust statistic: every run does identical work, so the
/// fastest observation is the one least disturbed by the machine.
fn crawl_wall_ms(shared: &SharedServer, sessions: usize, runs: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        let report = Crawl::builder()
            .sessions(sessions)
            .run_sharded(|_| shared.client())
            .expect("bench store is solvable");
        assert!(report.merged.queries > 0);
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// One `GET` against the wire server; returns (latency ms, status, body).
fn scrape(addr: &str, path: &str) -> (f64, u16, String) {
    let t0 = Instant::now();
    let stream = TcpStream::connect(addr).expect("connect for scrape");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    http::write_request(&mut &stream, "GET", path, b"").expect("write scrape");
    let resp = http::read_response(&mut reader).expect("read scrape");
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    (ms, resp.status, String::from_utf8_lossy(&resp.body).into_owned())
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: usize = if quick { 1_500 } else { 12_000 };
    let runs: usize = if quick { 2 } else { 5 };
    let merge_snapshots: usize = if quick { 2_000 } else { 20_000 };
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_pr9.json".to_string());

    eprintln!("building store n = {n}, k = {K} …");
    let ds = hdc_data::yahoo::generate_scaled(n, 11);
    let shared = SharedServer::new(ds.schema.clone(), ds.tuples.clone(), ServerConfig {
        k: K,
        seed: SEED,
    })
    .expect("yahoo dataset is schema-valid");

    let mut claims_ok = true;

    // ---- Claim 1: enabled-vs-disabled crawl wall overhead. ----------
    hdc_obs::set_enabled(false);
    let disabled_ms = crawl_wall_ms(&shared, 4, runs);
    hdc_obs::set_enabled(true);
    hdc_obs::registry().reset();
    let enabled_ms = crawl_wall_ms(&shared, 4, runs);
    hdc_obs::set_enabled(false);
    let overhead_pct = 100.0 * (enabled_ms - disabled_ms) / disabled_ms;
    eprintln!(
        "overhead: disabled {disabled_ms:.1} ms, enabled {enabled_ms:.1} ms \
         ({overhead_pct:+.2}%)"
    );
    if !quick && overhead_pct >= MAX_OVERHEAD_PCT {
        eprintln!(
            "CLAIM FAILED: instrumentation overhead {overhead_pct:.2}% >= {MAX_OVERHEAD_PCT}%"
        );
        claims_ok = false;
    }

    // ---- Claim 2: histogram merge cost. -----------------------------
    let source = hdc_obs::Histogram::new(hdc_obs::latency_bounds(), hdc_obs::Unit::Nanos);
    for i in 0..4_096u64 {
        source.observe(1_000 + i * 37);
    }
    let snap = source.snapshot();
    let target = hdc_obs::Histogram::new(hdc_obs::latency_bounds(), hdc_obs::Unit::Nanos);
    let t0 = Instant::now();
    for _ in 0..merge_snapshots {
        target.absorb(&snap);
    }
    let merge_ns = t0.elapsed().as_secs_f64() * 1e9 / merge_snapshots as f64;
    assert_eq!(target.count(), snap.count() * merge_snapshots as u64);
    eprintln!("histogram merge: {merge_ns:.0} ns per {}-bucket snapshot", snap.counts.len());

    // ---- Claim 3: /metrics scrape latency under concurrent load. ----
    hdc_obs::set_enabled(true);
    hdc_obs::registry().reset();
    let server = WireServer::start("127.0.0.1:0", shared.clone(), ServeOptions::default())
        .expect("bind loopback");
    let addr = server.addr().to_string();
    let conn = HttpConnector::new(&addr).expect("schema probe");
    let crawl = std::thread::spawn(move || {
        Crawl::builder()
            .sessions(4)
            .run_sharded(|identity| conn.db(identity))
            .expect("wire crawl completes")
    });
    let mut scrape_ms: Vec<f64> = Vec::new();
    let mut saw_nonzero_requests = false;
    while !crawl.is_finished() || scrape_ms.is_empty() {
        let (ms, status, body) = scrape(&addr, "/metrics");
        assert_eq!(status, 200, "/metrics answered {status}");
        assert!(
            body.contains("# TYPE hdc_wire_server_requests_total counter"),
            "/metrics body is not Prometheus text:\n{body}"
        );
        // The scrape itself is a request, so once a crawl query has
        // landed the counter is ≥ 2 and strictly positive regardless.
        if body
            .lines()
            .any(|l| l.starts_with("hdc_wire_server_requests_total ") && !l.ends_with(" 0"))
        {
            saw_nonzero_requests = true;
        }
        scrape_ms.push(ms);
        std::thread::sleep(Duration::from_millis(5));
    }
    let report = crawl.join().expect("crawl thread");
    let (stats_ms, stats_status, stats_body) = scrape(&addr, "/stats");
    assert_eq!(stats_status, 200);
    assert!(
        stats_body.starts_with("{\"counters\":["),
        "/stats is not the JSON registry dump"
    );
    server.shutdown().expect("clean drain");
    hdc_obs::set_enabled(false);
    if !saw_nonzero_requests {
        eprintln!("CLAIM FAILED: /metrics never showed a non-zero request counter mid-crawl");
        claims_ok = false;
    }
    scrape_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (p50, p99) = (percentile(&scrape_ms, 0.50), percentile(&scrape_ms, 0.99));
    eprintln!(
        "/metrics under load: {} scrapes while the crawl charged {} queries — \
         p50 {p50:.2} ms, p99 {p99:.2} ms; /stats {stats_ms:.2} ms",
        scrape_ms.len(),
        report.merged.queries,
    );

    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"pr\": 9,\n  \"description\": \"telemetry cost: \
         sharded crawl wall with the metrics registry enabled vs disabled (best-of-{runs}), \
         histogram snapshot merge cost, and GET /metrics scrape latency against the wire \
         server while a 4-session loopback crawl is in flight. Asserted at record time \
         (full runs): overhead under {MAX_OVERHEAD_PCT}%, and /metrics answers well-formed \
         Prometheus text with non-zero request counters mid-crawl\",\n  \"n\": {n},\n  \
         \"k\": {K},\n  \"quick\": {quick},\n  \"overhead\": {{\"disabled_wall_ms\": \
         {disabled_ms:.2}, \"enabled_wall_ms\": {enabled_ms:.2}, \"overhead_pct\": \
         {overhead_pct:.2}, \"runs\": {runs}}},\n  \"histogram_merge\": {{\"snapshots\": \
         {merge_snapshots}, \"ns_per_merge\": {merge_ns:.0}}},\n  \"metrics_scrape\": \
         {{\"samples\": {}, \"p50_ms\": {p50:.3}, \"p99_ms\": {p99:.3}, \"stats_ms\": \
         {stats_ms:.3}, \"crawl_queries\": {}}}\n}}\n",
        scrape_ms.len(),
        report.merged.queries,
    );
    std::fs::write(&out_path, json).expect("write bench json");
    eprintln!("wrote {out_path}");

    assert!(claims_ok, "one or more recorded claims failed; see stderr");
}
