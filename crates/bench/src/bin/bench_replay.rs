//! Crawl-trace replay benchmark + `BENCH_pr2.json` emitter.
//!
//! `BENCH_pr1.json` measures synthetic query *shapes*; this bench closes
//! the ROADMAP's crawl-trace loop: it records the exact query stream —
//! including the sibling-batch structure — of **real crawls** (Hybrid on
//! the Yahoo and Adult stand-ins, rank-shrink on the Adult numeric
//! projection), then replays that stream against a fresh server three
//! ways on identical data and priorities:
//!
//! * **batch** — each recorded sibling batch through
//!   `HiddenDatabase::query_batch` (the engine's joint planner: shared
//!   candidate lists, shared block masks, in-batch dedup);
//! * **per-query** — the same stream, one `query` call at a time (the
//!   engine without batch sharing);
//! * **legacy** — the same stream through the seed's row-at-a-time
//!   `LegacyEvaluator`.
//!
//! Replay outcomes are cross-checked (total tuples and overflow counts
//! must agree across all three), and the median queries/second of each
//! mode lands in `BENCH_pr2.json` (override the path with `BENCH_OUT`;
//! pass `--quick` for a smoke run). The recorded batch structure is the
//! crawlers' real one: rank-shrink split probes arrive in 2–3-query
//! batches, extended-DFS slice fetches and child expansions in windows
//! (see `hdc_core`'s session layer), so `batch_vs_perquery` measures
//! exactly what batching buys a real crawl.

use std::time::Instant;

use hdc_core::{Crawler, Hybrid, RankShrink};
use hdc_data::{adult, ops, yahoo, Dataset};
use hdc_server::{HiddenDbServer, LegacyEvaluator, ServerConfig};
use hdc_types::{DbError, HiddenDatabase, Query, QueryOutcome, Schema};

/// Forwards to the real server while recording the batch structure of
/// every request: singletons as 1-element batches, `query_batch` calls
/// verbatim.
struct Tracing {
    inner: HiddenDbServer,
    batches: Vec<Vec<Query>>,
}

impl HiddenDatabase for Tracing {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn k(&self) -> usize {
        self.inner.k()
    }

    fn query(&mut self, q: &Query) -> Result<QueryOutcome, DbError> {
        let out = self.inner.query(q)?;
        self.batches.push(vec![q.clone()]);
        Ok(out)
    }

    fn query_batch(&mut self, queries: &[Query]) -> Result<Vec<QueryOutcome>, DbError> {
        let outs = self.inner.query_batch(queries)?;
        self.batches.push(queries.to_vec());
        Ok(outs)
    }

    fn queries_issued(&self) -> u64 {
        self.inner.queries_issued()
    }
}

struct Workload {
    name: &'static str,
    ds: Dataset,
    k: usize,
    crawler: Box<dyn Crawler>,
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "hybrid_yahoo",
            ds: yahoo::generate_scaled(30_000, 4),
            k: 128,
            crawler: Box::new(Hybrid::new()),
        },
        Workload {
            name: "hybrid_adult",
            ds: adult::generate(4),
            k: 128,
            crawler: Box::new(Hybrid::new()),
        },
        Workload {
            name: "rank_shrink_adult_numeric",
            ds: ops::sample_fraction(&adult::generate_numeric(4), 0.4, 4),
            k: 64,
            crawler: Box::new(RankShrink::new()),
        },
    ]
}

const SEED: u64 = 0x9e2;

fn serve(ds: &Dataset, k: usize) -> HiddenDbServer {
    HiddenDbServer::new(ds.schema.clone(), ds.tuples.clone(), ServerConfig { k, seed: SEED })
        .expect("generated datasets are schema-valid")
}

/// A replay's digest, for cross-checking the three modes against each
/// other (the determinism contract end-to-end).
#[derive(PartialEq, Eq, Debug)]
struct Digest {
    queries: u64,
    tuples: u64,
    overflows: u64,
}

fn replay_batch(server: &mut HiddenDbServer, batches: &[Vec<Query>]) -> Digest {
    let mut d = Digest { queries: 0, tuples: 0, overflows: 0 };
    for batch in batches {
        for out in server.query_batch(batch).expect("recorded queries are valid") {
            d.queries += 1;
            d.tuples += out.tuples.len() as u64;
            d.overflows += u64::from(out.overflow);
        }
    }
    d
}

fn replay_per_query(server: &mut HiddenDbServer, batches: &[Vec<Query>]) -> Digest {
    let mut d = Digest { queries: 0, tuples: 0, overflows: 0 };
    for batch in batches {
        for q in batch {
            let out = server.query(q).expect("recorded queries are valid");
            d.queries += 1;
            d.tuples += out.tuples.len() as u64;
            d.overflows += u64::from(out.overflow);
        }
    }
    d
}

fn replay_legacy(legacy: &LegacyEvaluator, batches: &[Vec<Query>]) -> Digest {
    let mut d = Digest { queries: 0, tuples: 0, overflows: 0 };
    for batch in batches {
        for q in batch {
            let out = legacy.evaluate(q);
            d.queries += 1;
            d.tuples += out.tuples.len() as u64;
            d.overflows += u64::from(out.overflow);
        }
    }
    d
}

/// Median of a sample vector of seconds.
fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// Times one execution of `f` in seconds.
fn time_one(mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

struct Row {
    workload: &'static str,
    n: usize,
    k: usize,
    queries: u64,
    batches: usize,
    multi_batches: usize,
    batch_qps: f64,
    perquery_qps: f64,
    legacy_qps: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let samples = if quick { 3 } else { 11 };
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_pr2.json".to_string());

    let mut results: Vec<Row> = Vec::new();
    for w in workloads() {
        eprintln!("recording {} (n = {}, k = {}) ...", w.name, w.ds.n(), w.k);
        let mut traced = Tracing { inner: serve(&w.ds, w.k), batches: Vec::new() };
        w.crawler
            .crawl(&mut traced)
            .unwrap_or_else(|e| panic!("{} failed on {}: {e}", w.crawler.name(), w.ds.name));
        let batches = traced.batches;
        let queries: u64 = batches.iter().map(|b| b.len() as u64).sum();
        let multi = batches.iter().filter(|b| b.len() >= 2).count();
        eprintln!(
            "  trace: {queries} queries in {} calls ({multi} multi-query batches)",
            batches.len()
        );

        // Cross-check once: the three replay modes must agree.
        let mut check_server = serve(&w.ds, w.k);
        let legacy = check_server.legacy_evaluator();
        let want = replay_batch(&mut check_server, &batches);
        eprintln!("  batch-mode stats: {}", check_server.stats());
        check_server.reset_stats();
        assert_eq!(want, replay_per_query(&mut check_server, &batches), "{}", w.name);
        assert_eq!(want, replay_legacy(&legacy, &batches), "{}", w.name);

        // Interleave the three modes' samples (after a shared warmup)
        // so clock drift and cache-state trends hit them all equally.
        let mut server = serve(&w.ds, w.k);
        replay_batch(&mut server, &batches);
        replay_per_query(&mut server, &batches);
        replay_legacy(&legacy, &batches);
        let (mut bt, mut pt, mut lt) = (Vec::new(), Vec::new(), Vec::new());
        for _ in 0..samples {
            bt.push(time_one(|| {
                replay_batch(&mut server, &batches);
            }));
            pt.push(time_one(|| {
                replay_per_query(&mut server, &batches);
            }));
            lt.push(time_one(|| {
                replay_legacy(&legacy, &batches);
            }));
        }
        let batch_secs = median(bt);
        let perquery_secs = median(pt);
        let legacy_secs = median(lt);

        let row = Row {
            workload: w.name,
            n: w.ds.n(),
            k: w.k,
            queries,
            batches: batches.len(),
            multi_batches: multi,
            batch_qps: queries as f64 / batch_secs,
            perquery_qps: queries as f64 / perquery_secs,
            legacy_qps: queries as f64 / legacy_secs,
        };
        eprintln!(
            "  batch {:>10.0} q/s   per-query {:>10.0} q/s   legacy {:>10.0} q/s   \
             batch/per-query {:.3}x   batch/legacy {:.2}x",
            row.batch_qps,
            row.perquery_qps,
            row.legacy_qps,
            row.batch_qps / row.perquery_qps,
            row.batch_qps / row.legacy_qps
        );
        results.push(row);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str("  \"pr\": 2,\n");
    json.push_str(
        "  \"description\": \"median queries/sec replaying recorded real-crawl query streams \
         (sibling-batch structure preserved) through query_batch vs per-query engine vs seed \
         LegacyEvaluator, identical data and priorities\",\n",
    );
    json.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"n\": {}, \"k\": {}, \"queries\": {}, \
             \"calls\": {}, \"multi_query_batches\": {}, \"batch_qps\": {:.1}, \
             \"perquery_qps\": {:.1}, \"legacy_qps\": {:.1}, \"batch_vs_perquery\": {:.3}, \
             \"batch_vs_legacy\": {:.3}}}{}\n",
            r.workload,
            r.n,
            r.k,
            r.queries,
            r.batches,
            r.multi_batches,
            r.batch_qps,
            r.perquery_qps,
            r.legacy_qps,
            r.batch_qps / r.perquery_qps,
            r.batch_qps / r.legacy_qps,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH json");
    eprintln!("wrote {out_path}");
}
