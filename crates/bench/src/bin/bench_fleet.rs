//! Fleet-coordination benchmark + `BENCH_pr10.json` emitter.
//!
//! PR 10 adds distributed crawl coordination: a lease coordinator
//! (in-process [`MemoryLeaseRepository`], or wire-served by a
//! [`Coordinator`] mounted next to the data plane) hands shards to
//! workers that crawl, heartbeat, and report. This bench quantifies the
//! claims behind shipping it:
//!
//! 1. **Coordination is free of *semantic* cost.** A leased fleet —
//!    in-process or over the wire — extracts the same bag at the same
//!    total charged query cost as the same plan crawled solo, at every
//!    worker count. Leases, heartbeats, and completions are control
//!    traffic; the server never charges for them. Asserted exactly,
//!    even under `--quick`.
//! 2. **Control traffic is cheap.** Lease/heartbeat round trips are
//!    counted per run and one control round trip is timed directly, so
//!    the overhead of coordinating is a recorded number, not a vibe.
//! 3. **Partial-snapshot salvage replays strictly less than a
//!    whole-shard redo.** For a mid-shard crash the salvaging peer
//!    crawls only the un-checkpointed suffix; recorded as banked /
//!    suffix / whole-shard query counts, asserted
//!    `suffix < whole` (the suffix may re-pay slice fetches it shared
//!    with the prefix, so `banked + suffix ≥ whole` is the honest
//!    accounting, not equality).
//!
//! # What is measured
//!
//! One solvable Yahoo-shaped store (k = 128). One fixed
//! 16-shard plan. For each worker count W ∈ {1, 2, 4, 8}: fleet wall
//! time, total charged queries, and control-message counts in two
//! regimes — `memory-lease` (threads sharing a
//! [`MemoryLeaseRepository`], each on its own store client) and
//! `wire-lease` ([`WireServer`] hosting data + coordinator, workers
//! speaking HTTP for both planes). The `solo` row is the same plan
//! crawled shard-by-shard on one connection.
//!
//! Output: `BENCH_pr10.json` (override path with `BENCH_OUT`;
//! `--quick` runs a CI-sized subset). Claims are asserted at record
//! time — the process fails if they do not hold.

use std::sync::Arc;
use std::time::Instant;

use hdc_coord::{
    drive_worker, Coordinator, CoordinatorConfig, MemoryLeaseRepository, WireLeaseRepository,
    WorkerConfig, WorkerReport,
};
use hdc_core::{ResumableShard, SessionConfig, ShardSpec, Sharded};
use hdc_net::{RouteExt, ServeOptions, WireServer};
use hdc_server::{ServerConfig, SharedServer};
use hdc_types::TupleBag;

const SEED: u64 = 0x10aa;
const K: usize = 128;
/// The fixed plan width: `plan_oversubscribed(schema, 8, 2)` — the same
/// partition for every worker count, so costs are comparable across W.
const PLAN_SESSIONS: usize = 8;
const PLAN_FACTOR: usize = 2;

struct Cell {
    workers: usize,
    mode: &'static str,
    wall_ms: f64,
    queries: u64,
    tuples: usize,
    heartbeats: u64,
    waits: u64,
    salvaged: u64,
}

/// Sums the control counters of a fleet's worker reports.
fn fold_reports(reports: &[WorkerReport]) -> (u64, u64, u64) {
    reports.iter().fold((0, 0, 0), |(h, w, s), r| {
        (h + r.heartbeats, w + r.waits, s + r.shards_resumed)
    })
}

/// Totals from a drained repository checkpoint.
fn totals(repo: &mut dyn hdc_coord::LeaseRepository) -> (u64, usize, TupleBag) {
    let cp = repo.load().expect("checkpoint").expect("drained fleet");
    let mut queries = 0;
    let mut tuples = Vec::new();
    for snap in &cp.shards {
        assert!(snap.is_complete(), "drained fleet left a partial shard");
        queries += snap.queries;
        tuples.extend(snap.tuples.iter().cloned());
    }
    let count = tuples.len();
    (queries, count, TupleBag::from_tuples(tuples))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: usize = if quick { 1_500 } else { 12_000 };
    let worker_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_pr10.json".to_string());

    eprintln!("building store n = {n}, k = {K} …");
    let ds = hdc_data::yahoo::generate_scaled(n, 11);
    let shared = SharedServer::new(ds.schema.clone(), ds.tuples.clone(), ServerConfig {
        k: K,
        seed: SEED,
    })
    .expect("yahoo dataset is schema-valid");
    let plan = Sharded::plan_oversubscribed(&ds.schema, PLAN_SESSIONS, PLAN_FACTOR);
    let signatures: Vec<String> = plan.iter().map(ShardSpec::signature).collect();
    eprintln!("plan: {} shards", plan.len());

    let worker_cfg = |name: String| WorkerConfig {
        name,
        wait_cap_ms: 10,
        ..WorkerConfig::default()
    };
    let mut cells: Vec<Cell> = Vec::new();
    let mut claims_ok = true;

    // Solo baseline: the same plan, shard by shard, one connection.
    let t0 = Instant::now();
    let (solo_queries, solo_tuples, solo_bag) = {
        let mut db = shared.client();
        let mut queries = 0;
        let mut tuples = Vec::new();
        for spec in &plan {
            let report = spec.crawl(&mut db, &ds.schema).expect("bench store is solvable");
            queries += report.queries;
            tuples.extend(report.tuples);
        }
        let count = tuples.len();
        (queries, count, TupleBag::from_tuples(tuples))
    };
    let solo_wall = t0.elapsed().as_secs_f64() * 1e3;
    cells.push(Cell {
        workers: 1,
        mode: "solo",
        wall_ms: solo_wall,
        queries: solo_queries,
        tuples: solo_tuples,
        heartbeats: 0,
        waits: 0,
        salvaged: 0,
    });
    eprintln!("  solo: {solo_queries} queries, {solo_tuples} tuples, {solo_wall:.1} ms");

    for &w in worker_counts {
        // In-process lease fleet: W threads, one shared lease state,
        // each worker on its own client of the shared store.
        let repo = MemoryLeaseRepository::new(signatures.clone(), std::time::Duration::from_secs(30));
        let t0 = Instant::now();
        let reports: Vec<WorkerReport> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..w)
                .map(|i| {
                    let mut worker_repo = repo.clone();
                    let cfg = worker_cfg(format!("mem-{i}"));
                    let shared = &shared;
                    let schema = &ds.schema;
                    scope.spawn(move || {
                        let mut db = shared.client();
                        drive_worker(&mut worker_repo, &mut db, schema, &cfg)
                            .expect("in-process fleet worker")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker thread")).collect()
        });
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        let mut repo = repo;
        let (queries, tuples, fleet_bag) = totals(&mut repo);
        let (heartbeats, waits, salvaged) = fold_reports(&reports);
        if queries != solo_queries || !fleet_bag.multiset_eq(&solo_bag) {
            eprintln!(
                "CLAIM FAILED: W={w}: memory-lease fleet (bag {tuples}, cost {queries}) != \
                 solo (bag {solo_tuples}, cost {solo_queries})"
            );
            claims_ok = false;
        }
        cells.push(Cell {
            workers: w,
            mode: "memory-lease",
            wall_ms: wall,
            queries,
            tuples,
            heartbeats,
            waits,
            salvaged,
        });

        // Wire lease fleet: one server hosts both planes; workers speak
        // HTTP for data queries and lease verbs alike.
        let (coordinator, _restore) =
            Coordinator::new(signatures.clone(), CoordinatorConfig::default())
                .expect("coordinator over a fresh plan");
        let coordinator = Arc::new(coordinator);
        let server = WireServer::start("127.0.0.1:0", shared.clone(), ServeOptions {
            extension: Some(Arc::clone(&coordinator) as Arc<dyn RouteExt>),
            ..ServeOptions::default()
        })
        .expect("bind loopback");
        let addr = server.addr().to_string();
        let t0 = Instant::now();
        let reports: Vec<WorkerReport> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..w)
                .map(|i| {
                    let cfg = worker_cfg(format!("wire-{i}"));
                    let addr = addr.clone();
                    let schema = &ds.schema;
                    scope.spawn(move || {
                        let mut lease =
                            WireLeaseRepository::connect(&addr).expect("coordinator reachable");
                        let conn =
                            hdc_net::HttpConnector::new(&addr).expect("schema probe");
                        let mut db = conn.db(i);
                        drive_worker(&mut lease, &mut db, schema, &cfg)
                            .expect("wire fleet worker")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker thread")).collect()
        });
        let wall = t0.elapsed().as_secs_f64() * 1e3;

        // Control-plane round trip, timed directly: each connect is one
        // TCP setup + `GET /plan` + full response.
        let probes = 32;
        let t0 = Instant::now();
        for _ in 0..probes {
            WireLeaseRepository::connect(&addr).expect("coordinator reachable");
        }
        let control_rtt_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(probes);
        server.shutdown().expect("clean drain");

        let mut wire_repo = coordinator.repo();
        let (queries, tuples, fleet_bag) = totals(&mut wire_repo);
        let (heartbeats, waits, salvaged) = fold_reports(&reports);
        if queries != solo_queries || !fleet_bag.multiset_eq(&solo_bag) {
            eprintln!(
                "CLAIM FAILED: W={w}: wire-lease fleet (bag {tuples}, cost {queries}) != \
                 solo (bag {solo_tuples}, cost {solo_queries})"
            );
            claims_ok = false;
        }
        cells.push(Cell {
            workers: w,
            mode: "wire-lease",
            wall_ms: wall,
            queries,
            tuples,
            heartbeats,
            waits,
            salvaged,
        });

        for cell in &cells[cells.len() - 2..] {
            eprintln!(
                "  W = {:>2}  {:<13}  wall {:>8.1} ms  {:>7} queries  {:>6} heartbeats  \
                 {:>5} waits  {} tuples",
                cell.workers, cell.mode, cell.wall_ms, cell.queries, cell.heartbeats,
                cell.waits, cell.tuples
            );
        }
        eprintln!("           control round trip {control_rtt_ms:.2} ms (TCP connect + GET /plan)");
    }

    // Partial-snapshot salvage: bank a mid-shard frontier, then crawl
    // only the suffix; record banked / suffix / whole query counts.
    let (spec, points) = plan
        .iter()
        .filter_map(|s| s.resume_points().map(|p| (s, p)))
        .max_by_key(|&(_, p)| p)
        .expect("plan has a resumable shard");
    assert!(points >= 2, "salvage measurement needs ≥ 2 resume points");
    let cursor = points / 2;
    let whole = {
        let mut db = shared.client();
        spec.crawl(&mut db, &ds.schema).expect("solvable").queries
    };
    let banked = {
        let mut db = shared.client();
        let mut at_cursor = 0;
        spec.crawl_resumable_configured(&mut db, &ds.schema, SessionConfig::default(), |done, interim| {
            if done as usize == cursor {
                at_cursor = interim.queries;
            }
        })
        .expect("solvable");
        at_cursor
    };
    let suffix = {
        let mut db = shared.client();
        spec.resume_suffix(cursor)
            .expect("cursor in range")
            .crawl(&mut db, &ds.schema)
            .expect("solvable")
            .queries
    };
    eprintln!(
        "salvage: shard {:?} at cursor {cursor}/{points}: banked {banked} + suffix {suffix} \
         vs whole {whole} (saved {} replay queries)",
        spec.signature(),
        whole.saturating_sub(suffix)
    );
    if suffix >= whole || banked + suffix < whole {
        eprintln!(
            "CLAIM FAILED: salvage accounting: banked {banked}, suffix {suffix}, whole {whole}"
        );
        claims_ok = false;
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str("  \"pr\": 10,\n");
    json.push_str(
        "  \"description\": \"fleet coordination cost: one fixed shard plan crawled by W \
         leased workers in two regimes — memory-lease (threads on one MemoryLeaseRepository) \
         and wire-lease (WireServer hosting data plane + lease coordinator, workers speaking \
         HTTP for both) — against the same plan crawled solo. Asserted at record time: fleet \
         bag and total charged cost equal solo exactly in both regimes at every worker count \
         (leases/heartbeats are uncharged control traffic), and a mid-shard salvage's suffix \
         replay charges strictly fewer queries than a whole-shard redo\",\n",
    );
    json.push_str(&format!("  \"n\": {n},\n"));
    json.push_str(&format!("  \"k\": {K},\n"));
    json.push_str(&format!("  \"shards\": {},\n", plan.len()));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"salvage\": {{\"resume_points\": {points}, \"cursor\": {cursor}, \
         \"whole_queries\": {whole}, \"banked_queries\": {banked}, \
         \"suffix_queries\": {suffix}, \"replay_saved\": {}}},\n",
        whole.saturating_sub(suffix)
    ));
    json.push_str("  \"rows\": [\n");
    for (i, x) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"mode\": \"{}\", \"wall_ms\": {:.2}, \"queries\": {}, \
             \"tuples\": {}, \"heartbeats\": {}, \"waits\": {}, \"salvaged_grants\": {}}}{}\n",
            x.workers,
            x.mode,
            x.wall_ms,
            x.queries,
            x.tuples,
            x.heartbeats,
            x.waits,
            x.salvaged,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write bench json");
    eprintln!("wrote {out_path}");

    assert!(claims_ok, "one or more recorded claims failed; see stderr");
}
