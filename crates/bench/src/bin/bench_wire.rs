//! Wire-layer benchmark + `BENCH_pr8.json` emitter.
//!
//! PR 8 puts a hand-rolled HTTP/1.1 loopback between the crawler and
//! the store (`hdc serve` + `HttpConnector`). This bench quantifies the
//! two claims behind shipping that layer:
//!
//! 1. **The wire is free of *semantic* cost.** A sharded crawl over
//!    loopback extracts the same bag at the same charged query cost as
//!    the same crawl in-process — asserted exactly, per session count,
//!    even under `--quick`.
//! 2. **Loopback overhead is small against any real remote.** The
//!    crawl's wall time over loopback must beat the same crawl against
//!    a simulated remote that charges [`SIMULATED_RTT`] per round trip
//!    (2 ms — an optimistic same-region RTT). The gap is the headroom
//!    a real deployment has before the wire layer is what hurts.
//!
//! # What is measured
//!
//! One solvable Yahoo-shaped store (k = 128; the scaled generator's hot
//! listing has multiplicity 100). For each session count
//! S ∈ {1, 2, 4, 8, 16}: crawl wall time, charged queries, and charged
//! QPS in three regimes — `in-process` (`shared.client()`), `loopback`
//! (`WireServer` + `HttpConnector` on 127.0.0.1), and `simulated-rtt`
//! (in-process client wrapped to sleep 2 ms per round trip; batches
//! count one round trip, as on the wire).
//!
//! Output: `BENCH_pr8.json` (override path with `BENCH_OUT`; `--quick`
//! runs a CI-sized subset). Claims are asserted at record time — the
//! process fails if they do not hold.

use std::time::{Duration, Instant};

use hdc_core::Crawl;
use hdc_net::{HttpConnector, ServeOptions, WireServer};
use hdc_server::{ServerClient, ServerConfig, SharedServer};
use hdc_types::{DbError, HiddenDatabase, Query, QueryOutcome, Schema, TupleBag};

const SEED: u64 = 0x8e7;
const K: usize = 128;
/// Per-round-trip delay of the simulated remote regime.
const SIMULATED_RTT: Duration = Duration::from_millis(2);

/// An in-process client that pays a fixed RTT per round trip — one
/// sleep per `query`, one per `query_batch`, exactly like the wire.
struct SimulatedRemote(ServerClient);

impl HiddenDatabase for SimulatedRemote {
    fn schema(&self) -> &Schema {
        self.0.schema()
    }
    fn k(&self) -> usize {
        self.0.k()
    }
    fn query(&mut self, q: &Query) -> Result<QueryOutcome, DbError> {
        std::thread::sleep(SIMULATED_RTT);
        self.0.query(q)
    }
    fn query_batch(&mut self, qs: &[Query]) -> Result<Vec<QueryOutcome>, DbError> {
        std::thread::sleep(SIMULATED_RTT);
        self.0.query_batch(qs)
    }
    fn try_query_batch(&mut self, qs: &[Query]) -> (Vec<QueryOutcome>, Option<DbError>) {
        std::thread::sleep(SIMULATED_RTT);
        self.0.try_query_batch(qs)
    }
    fn queries_issued(&self) -> u64 {
        self.0.queries_issued()
    }
}

struct Cell {
    sessions: usize,
    mode: &'static str,
    wall_ms: f64,
    queries: u64,
    tuples: usize,
    qps: f64,
}

fn run<D, F>(sessions: usize, factory: F) -> (f64, u64, usize, TupleBag)
where
    D: HiddenDatabase + Send,
    F: Fn(usize) -> D + Sync,
{
    let t0 = Instant::now();
    let report = Crawl::builder()
        .sessions(sessions)
        .run_sharded(factory)
        .expect("bench store is solvable");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let bag = TupleBag::from_tuples(report.merged.tuples.iter().cloned());
    (wall_ms, report.merged.queries, report.merged.tuples.len(), bag)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: usize = if quick { 1_500 } else { 12_000 };
    let session_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8, 16] };
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_pr8.json".to_string());

    eprintln!("building store n = {n}, k = {K} …");
    let ds = hdc_data::yahoo::generate_scaled(n, 11);
    let shared = SharedServer::new(ds.schema.clone(), ds.tuples.clone(), ServerConfig {
        k: K,
        seed: SEED,
    })
    .expect("yahoo dataset is schema-valid");

    let mut cells: Vec<Cell> = Vec::new();
    let mut claims_ok = true;

    for &s in session_counts {
        // In-process reference.
        let (wall, queries, tuples, ref_bag) = run(s, |_| shared.client());
        cells.push(Cell {
            sessions: s,
            mode: "in-process",
            wall_ms: wall,
            queries,
            tuples,
            qps: queries as f64 / (wall / 1e3),
        });

        // Loopback wire.
        let server = WireServer::start("127.0.0.1:0", shared.clone(), ServeOptions::default())
            .expect("bind loopback");
        let conn = HttpConnector::new(&server.addr().to_string()).expect("schema probe");
        let (wall, w_queries, w_tuples, wire_bag) = run(s, |identity| conn.db(identity));
        server.shutdown().expect("clean drain");
        cells.push(Cell {
            sessions: s,
            mode: "loopback",
            wall_ms: wall,
            queries: w_queries,
            tuples: w_tuples,
            qps: w_queries as f64 / (wall / 1e3),
        });

        // Claim 1: the wire changes nothing semantic — exact, always.
        if !wire_bag.multiset_eq(&ref_bag) || w_queries != queries {
            eprintln!(
                "CLAIM FAILED: S={s}: loopback (bag {w_tuples}, cost {w_queries}) != \
                 in-process (bag {tuples}, cost {queries})"
            );
            claims_ok = false;
        }

        // Simulated remote at a fixed RTT per round trip.
        let (sleep_wall, sl_queries, sl_tuples, _) =
            run(s, |_| SimulatedRemote(shared.client()));
        cells.push(Cell {
            sessions: s,
            mode: "simulated-rtt",
            wall_ms: sleep_wall,
            queries: sl_queries,
            tuples: sl_tuples,
            qps: sl_queries as f64 / (sleep_wall / 1e3),
        });

        // Claim 2: loopback beats a 2 ms-RTT remote at every width.
        let loopback_wall = cells[cells.len() - 2].wall_ms;
        if loopback_wall >= sleep_wall {
            eprintln!(
                "CLAIM FAILED: S={s}: loopback {loopback_wall:.0} ms >= \
                 simulated-rtt {sleep_wall:.0} ms"
            );
            claims_ok = false;
        }

        for cell in &cells[cells.len() - 3..] {
            eprintln!(
                "  S = {:>2}  {:<13}  wall {:>8.1} ms  {:>8} queries  {:>9.0} qps  {} tuples",
                cell.sessions, cell.mode, cell.wall_ms, cell.queries, cell.qps, cell.tuples
            );
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str("  \"pr\": 8,\n");
    json.push_str(
        "  \"description\": \"wire-layer cost: sharded crawl wall time and charged QPS by \
         session count in three regimes — in-process (shared store client), loopback \
         (hand-rolled HTTP/1.1 over 127.0.0.1), and simulated-rtt (in-process plus a 2 ms \
         sleep per round trip, batches one round trip). Asserted at record time: loopback \
         bag and charged cost equal in-process exactly at every session count, and loopback \
         wall time beats the simulated 2 ms-RTT remote at every session count\",\n",
    );
    json.push_str(&format!("  \"n\": {n},\n"));
    json.push_str(&format!("  \"k\": {K},\n"));
    json.push_str(&format!(
        "  \"simulated_rtt_ms\": {},\n",
        SIMULATED_RTT.as_millis()
    ));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"rows\": [\n");
    for (i, x) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"sessions\": {}, \"mode\": \"{}\", \"wall_ms\": {:.2}, \"queries\": {}, \
             \"tuples\": {}, \"qps\": {:.0}}}{}\n",
            x.sessions,
            x.mode,
            x.wall_ms,
            x.queries,
            x.tuples,
            x.qps,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write bench json");
    eprintln!("wrote {out_path}");

    assert!(claims_ok, "one or more recorded claims failed; see stderr");
}
