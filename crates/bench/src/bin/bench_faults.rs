//! Fault-tolerance benchmark + `BENCH_pr6.json` emitter.
//!
//! The robustness PR's headline numbers: crawl completion rate and
//! overhead under deterministic transient-fault injection, with and
//! without the retry policy, as the fault rate sweeps 0–20%.
//!
//! # What is measured
//!
//! Every trial crawls a full dataset through a [`FaultyDb`] whose seeded
//! schedule injects `DbError::Transient` at the configured per-attempt
//! rate. Two modes per rate:
//!
//! * **no retry** (the legacy behavior): the first injected fault aborts
//!   the crawl — completion collapses as soon as the rate is non-zero,
//!   because a full crawl issues thousands of attempts.
//! * **retry** ([`RetryPolicy`] with 8 attempts, zero-sleep backoff for
//!   benching): a query fails only if 8 *consecutive* attempts fault
//!   (p = rate⁸ per query), so completion stays ≈ 1 even at 20%.
//!
//! Overheads are measured exactly, not estimated: failed attempts never
//! reach (or charge) the inner server, so a completed faulty crawl must
//! charge **exactly** the fault-free query count, and its only overhead
//! is the retried attempts themselves (`transient_retries`, cross-checked
//! against `FaultyDb::faults_injected` per trial). Wall clock is recorded
//! for the curious but the paper's cost metric — queries — is the claim.
//!
//! Claims asserted at record time (the process fails if they don't hold):
//!
//! 1. With retry at a 10% fault rate, completion ≥ 99% on every dataset.
//! 2. Every completed faulty crawl extracts the bit-identical bag at the
//!    bit-identical charged cost as the fault-free crawl.
//! 3. Per-trial retry overhead equals the injected-fault count exactly.
//! 4. Without retry at ≥ 5%, completion < 50% (the failure mode the
//!    retry layer exists to fix — in practice it is ≈ 0%).
//!
//! Output: `BENCH_pr6.json` (override path with `BENCH_OUT`; `--quick`
//! runs a smoke-sized subset for CI).

use std::time::Instant;

use hdc_core::{verify_complete, Crawl, RetryPolicy, Strategy};
use hdc_data::synth::SyntheticSpec;
use hdc_data::{adult, ops, yahoo, Dataset};
use hdc_server::{HiddenDbServer, ServerConfig};
use hdc_types::{FaultConfig, FaultyDb, TupleBag};

struct Workload {
    name: &'static str,
    ds: Dataset,
    k: usize,
}

fn workloads(quick: bool) -> Vec<Workload> {
    let yahoo_n = if quick { 2_000 } else { 12_000 };
    let adult_frac = if quick { 0.03 } else { 0.20 };
    let uniform_n = if quick { 1_500 } else { 8_000 };
    vec![
        Workload {
            name: "yahoo_autos",
            ds: yahoo::generate_scaled(yahoo_n, 4),
            k: 128,
        },
        Workload {
            name: "adult_census",
            ds: ops::sample_fraction(&adult::generate(4), adult_frac, 4),
            k: 128,
        },
        Workload {
            name: "uniform_mixed",
            ds: SyntheticSpec::builder("uniform_mixed", uniform_n)
                .cat_zipf("c0", 12, 0.0)
                .int_uniform("x", 0, 99_999)
                .build()
                .generate(7),
            k: 64,
        },
    ]
}

const SEED: u64 = 0xfa17;
/// Retry budget per query: a query is lost only after 8 consecutive
/// faulted attempts (p = rate⁸), which keeps completion ≈ 1 across the
/// whole sweep while staying far from an unbounded retry loop.
const MAX_ATTEMPTS: u32 = 8;

struct Cell {
    workload: &'static str,
    rate_pct: u32,
    retry: bool,
    trials: u32,
    completed: u32,
    /// Mean injected faults per completed trial (== retried attempts).
    mean_faults: f64,
    /// Charged queries of every completed trial (identical across trials
    /// and identical to the fault-free crawl — asserted).
    queries: u64,
    /// Mean wall clock per trial, milliseconds.
    mean_wall_ms: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trials: u32 = if quick { 3 } else { 12 };
    let rates: &[u32] = if quick { &[0, 10] } else { &[0, 5, 10, 20] };
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_pr6.json".to_string());

    let mut cells: Vec<Cell> = Vec::new();
    let mut claims_ok = true;
    for w in workloads(quick) {
        // The fault-free reference: the bag and cost every completed
        // faulty trial must reproduce exactly.
        let mut clean_server = HiddenDbServer::new(
            w.ds.schema.clone(),
            w.ds.tuples.clone(),
            ServerConfig { k: w.k, seed: SEED },
        )
        .expect("generated datasets are schema-valid");
        let clean_begun = Instant::now();
        let clean = Crawl::builder()
            .strategy(Strategy::Auto)
            .run(&mut clean_server)
            .unwrap_or_else(|e| panic!("{}: fault-free crawl failed: {e}", w.name));
        let clean_wall_ms = clean_begun.elapsed().as_secs_f64() * 1e3;
        verify_complete(&w.ds.tuples, &clean)
            .unwrap_or_else(|e| panic!("{}: incomplete crawl: {e}", w.name));
        let clean_bag: TupleBag = clean.tuples.iter().collect();
        eprintln!(
            "{} (n = {}, k = {}): fault-free cost {} queries ({clean_wall_ms:.0} ms)",
            w.name,
            w.ds.n(),
            w.k,
            clean.queries
        );

        for &rate_pct in rates {
            for retry in [false, true] {
                let mut completed = 0u32;
                let mut faults_total = 0u64;
                let mut wall_total_ms = 0.0f64;
                for trial in 0..trials {
                    let server = HiddenDbServer::new(
                        w.ds.schema.clone(),
                        w.ds.tuples.clone(),
                        ServerConfig { k: w.k, seed: SEED },
                    )
                    .expect("generated datasets are schema-valid");
                    let mut faulty = FaultyDb::new(
                        server,
                        FaultConfig {
                            seed: SEED ^ u64::from(trial).wrapping_mul(0x9e37_79b9),
                            transient_rate: f64::from(rate_pct) / 100.0,
                            burst: 1,
                            fail_after: None,
                        },
                    );
                    let mut builder = Crawl::builder().strategy(Strategy::Auto);
                    if retry {
                        builder = builder.retry(RetryPolicy::new(MAX_ATTEMPTS).no_sleep());
                    }
                    let begun = Instant::now();
                    let result = builder.run(&mut faulty);
                    wall_total_ms += begun.elapsed().as_secs_f64() * 1e3;
                    match result {
                        Ok(report) => {
                            completed += 1;
                            faults_total += faulty.faults_injected();
                            // Claim 2: bit-identical bag at bit-identical
                            // charged cost.
                            assert_eq!(
                                report.queries, clean.queries,
                                "{}: faulty crawl charged a different cost",
                                w.name
                            );
                            let bag: TupleBag = report.tuples.iter().collect();
                            assert!(
                                bag.multiset_eq(&clean_bag),
                                "{}: faulty crawl extracted a different bag",
                                w.name
                            );
                            // Claim 3: overhead is exactly the injected
                            // faults.
                            assert_eq!(
                                report.metrics.transient_retries,
                                faulty.faults_injected(),
                                "{}: retry accounting diverged from the fault schedule",
                                w.name
                            );
                        }
                        Err(e) => {
                            assert!(
                                rate_pct > 0,
                                "{}: crawl failed with no faults injected: {e}",
                                w.name
                            );
                        }
                    }
                }
                let cell = Cell {
                    workload: w.name,
                    rate_pct,
                    retry,
                    trials,
                    completed,
                    mean_faults: if completed > 0 {
                        faults_total as f64 / f64::from(completed)
                    } else {
                        0.0
                    },
                    queries: clean.queries,
                    mean_wall_ms: wall_total_ms / f64::from(trials),
                };
                eprintln!(
                    "  rate {:>2}%  {:<8}  {:>2}/{} completed  mean retried attempts {:>8.1} \
                     ({:.1}% of cost)  mean wall {:>7.1} ms",
                    rate_pct,
                    if retry { "retry" } else { "no-retry" },
                    cell.completed,
                    cell.trials,
                    cell.mean_faults,
                    100.0 * cell.mean_faults / cell.queries as f64,
                    cell.mean_wall_ms,
                );
                cells.push(cell);
            }
        }
    }

    // Claims checked on every run (quick included — they are exact
    // determinism properties, not timing).
    for cell in &cells {
        if cell.retry && cell.rate_pct == 10 {
            let completion = f64::from(cell.completed) / f64::from(cell.trials);
            if completion < 0.99 {
                eprintln!(
                    "CLAIM FAILED: {} with retry at 10% completed only {:.0}%",
                    cell.workload,
                    completion * 100.0
                );
                claims_ok = false;
            }
        }
        if !cell.retry && cell.rate_pct >= 5 {
            let completion = f64::from(cell.completed) / f64::from(cell.trials);
            if completion >= 0.5 {
                eprintln!(
                    "CLAIM FAILED: {} without retry at {}% still completed {:.0}% — \
                     the no-retry baseline should collapse",
                    cell.workload,
                    cell.rate_pct,
                    completion * 100.0
                );
                claims_ok = false;
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str("  \"pr\": 6,\n");
    json.push_str(&format!(
        "  \"description\": \"crawl completion and overhead under deterministic transient-fault \
         injection, fault rate swept 0-20% per attempt, with vs without the session retry policy \
         ({MAX_ATTEMPTS} attempts, exponential backoff suppressed for benching); completed \
         faulty crawls are asserted bit-identical in bag and charged cost to the fault-free \
         crawl, with overhead exactly the retried attempts\",\n"
    ));
    json.push_str(&format!("  \"max_attempts\": {MAX_ATTEMPTS},\n"));
    json.push_str(&format!("  \"trials_per_cell\": {trials},\n"));
    json.push_str("  \"rows\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"fault_rate_pct\": {}, \"retry\": {}, \
             \"trials\": {}, \"completed\": {}, \"completion_rate\": {:.3}, \
             \"charged_queries\": {}, \"mean_retried_attempts\": {:.1}, \
             \"query_overhead_pct\": {:.2}, \"mean_wall_ms\": {:.2}}}{}\n",
            c.workload,
            c.rate_pct,
            c.retry,
            c.trials,
            c.completed,
            f64::from(c.completed) / f64::from(c.trials),
            c.queries,
            c.mean_faults,
            100.0 * c.mean_faults / c.queries as f64,
            c.mean_wall_ms,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH json");
    eprintln!("wrote {out_path}");
    assert!(claims_ok, "headline claims failed; see log above");
}
