//! Shared-read serving benchmark + `BENCH_pr7.json` emitter.
//!
//! PR 7 splits the immutable evaluation core out of the server so one
//! column store serves many concurrent clients (`SharedServer` +
//! per-client sessions). This bench quantifies the two claims that
//! motivated the refactor, against the only alternative the old `&mut`
//! API offered — **cloning the whole database per client**:
//!
//! 1. **Setup cost.** Standing up C clients on a shared store costs one
//!    store build + C cheap handles; the clone path pays C full builds
//!    (copy + sort + index) and C resident copies of the data. Both the
//!    build wall time and an estimate of resident store bytes are
//!    recorded; shared must win for every C ≥ 2.
//! 2. **Serving throughput.** Per-query work is identical by
//!    construction (same engine, per-client scratch in both worlds), so
//!    aggregate QPS must match the clone baseline — within noise — at
//!    every client count, asserted at C ≥ 8.
//!
//! # What is measured
//!
//! For each store size n ∈ {10⁵, 10⁶, 10⁷} and client count
//! C ∈ {1, 2, 4, 8, 16, 32}: C OS threads, each owning one client
//! (`shared.client()` vs a private `HiddenDbServer` clone), each issuing
//! a deterministic per-client stream of mixed point/range queries.
//! Sustained aggregate QPS (total queries / wall) plus p50/p99 of
//! individual query latencies merged across clients. The clone baseline
//! is memory-capped: client counts whose clones would exceed
//! [`CLONE_ROW_BUDGET`] total resident rows are skipped and recorded as
//! capped (that cap *is* claim 1's point — the shared path has no such
//! limit).
//!
//! Output: `BENCH_pr7.json` (override path with `BENCH_OUT`; `--quick`
//! runs a CI-sized smoke subset). Claims are asserted at record time —
//! the process fails if they do not hold.

use std::time::Instant;

use hdc_data::synth::SyntheticSpec;
use hdc_data::Dataset;
use hdc_server::{HiddenDbServer, ServerConfig, SharedServer};
use hdc_types::{HiddenDatabase, Predicate, Query};

const SEED: u64 = 0x5e27e;
const K: usize = 100;

/// Total resident rows the clone-per-client baseline may hold at once
/// (all copies summed). 2·10⁷ rows ≈ a few GB with column + row storage;
/// beyond that the baseline is not merely slow, it stops fitting — which
/// is the failure mode the shared path removes.
const CLONE_ROW_BUDGET: usize = 20_000_000;

fn dataset(n: usize) -> Dataset {
    SyntheticSpec::builder(format!("serve_{n}"), n)
        .cat_zipf("section", 16, 0.8)
        .int_uniform("price", 0, 999_999)
        .build()
        .generate(SEED)
}

/// xorshift64* — the workload stream, deterministic per client so the
/// shared and clone runs serve byte-identical traffic.
fn stream(mut state: u64) -> impl FnMut() -> u64 {
    state |= 1;
    move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// One client's traffic: mixed narrow/medium range queries on the
/// numeric attribute, every fourth also pinning the categorical one.
fn client_queries(client: usize, count: usize) -> Vec<Query> {
    let mut next = stream(SEED ^ (client as u64).wrapping_mul(0x9e37_79b9));
    (0..count)
        .map(|i| {
            let width = 1 + (next() % 5_000) as i64;
            let lo = (next() % (1_000_000 - width as u64)) as i64;
            let cat = if i % 4 == 0 {
                Predicate::Eq((next() % 16) as u32)
            } else {
                Predicate::Any
            };
            Query::new(vec![cat, Predicate::Range { lo, hi: lo + width }])
        })
        .collect()
}

/// Drives `clients` pre-built database handles, one per thread, each
/// through its own query stream. Returns (aggregate QPS, merged
/// per-query latencies in nanoseconds).
fn serve<D: HiddenDatabase + Send>(clients: Vec<D>, per_client: usize) -> (f64, Vec<u64>) {
    let begun = Instant::now();
    let lat_per_client: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .into_iter()
            .enumerate()
            .map(|(c, mut db)| {
                scope.spawn(move || {
                    let queries = client_queries(c, per_client);
                    let mut lat = Vec::with_capacity(per_client);
                    for q in &queries {
                        let t0 = Instant::now();
                        db.query(q).expect("bench queries are valid");
                        lat.push(t0.elapsed().as_nanos() as u64);
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let wall = begun.elapsed().as_secs_f64();
    let total: usize = lat_per_client.iter().map(Vec::len).sum();
    let mut merged: Vec<u64> = lat_per_client.into_iter().flatten().collect();
    merged.sort_unstable();
    (total as f64 / wall, merged)
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Rough resident bytes of one built server: row storage (tuple vecs of
/// 16-byte values) + columnar store + sorted index, both one u64-sized
/// word per cell. An estimate for the JSON record — the *ratio* between
/// C copies and 1 is exact regardless of the constant.
fn est_store_bytes(n: usize, arity: usize) -> u64 {
    (n * arity) as u64 * (16 + 8 + 8) + (n as u64 * 24)
}

struct Cell {
    n: usize,
    clients: usize,
    mode: &'static str,
    setup_ms: f64,
    store_copies: usize,
    est_bytes: u64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[100_000]
    } else {
        &[100_000, 1_000_000, 10_000_000]
    };
    let counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8, 16, 32] };
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_pr7.json".to_string());

    let mut cells: Vec<Cell> = Vec::new();
    let mut capped: Vec<(usize, usize)> = Vec::new();
    for &n in sizes {
        let per_client = if quick || n >= 10_000_000 {
            200
        } else if n >= 1_000_000 {
            800
        } else {
            2_000
        };
        eprintln!("building dataset n = {n} …");
        let ds = dataset(n);
        let cfg = ServerConfig { k: K, seed: SEED };
        let arity = ds.schema.arity();

        // Warm-up build, discarded: the very first build in the process
        // pays allocator growth and page faults that later builds don't,
        // and the shared store (built once, first) would otherwise eat
        // that cold-start cost while every clone build runs warm.
        drop(
            HiddenDbServer::new(ds.schema.clone(), ds.tuples.clone(), cfg)
                .expect("synthetic dataset is schema-valid"),
        );

        // The shared store is built once per size; every client count
        // reuses it — that asymmetry is the product, not a bench trick,
        // so its one-time build cost is charged to the C = 1 cell and
        // the (cheap) per-handle cost to every cell. The build is a
        // single-sample measurement, so take the min of three (the
        // clone side's C-build sum self-amortizes noise over C builds;
        // one unlucky shared sample would fail claim 1 spuriously).
        let mut shared_build_ms = f64::INFINITY;
        let mut shared = None;
        for _ in 0..3 {
            let t0 = Instant::now();
            let s = SharedServer::new(ds.schema.clone(), ds.tuples.clone(), cfg)
                .expect("synthetic dataset is schema-valid");
            shared_build_ms = shared_build_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            shared = Some(s);
        }
        let shared = shared.expect("built above");
        eprintln!("  shared store built in {shared_build_ms:.0} ms");

        for &c in counts {
            // Shared: C handles on the one store.
            let t0 = Instant::now();
            let clients: Vec<_> = (0..c).map(|_| shared.client()).collect();
            let handle_ms = t0.elapsed().as_secs_f64() * 1e3;
            let (qps, lat) = serve(clients, per_client);
            cells.push(Cell {
                n,
                clients: c,
                mode: "shared",
                setup_ms: shared_build_ms + handle_ms,
                store_copies: 1,
                est_bytes: est_store_bytes(n, arity),
                qps,
                p50_us: percentile(&lat, 0.50) as f64 / 1e3,
                p99_us: percentile(&lat, 0.99) as f64 / 1e3,
            });
            let s = cells.last().unwrap();
            eprintln!(
                "  n = {n:>8}  C = {c:>2}  shared  setup {:>8.1} ms  {:>9.0} qps  p50 {:>7.1} µs  p99 {:>8.1} µs",
                s.setup_ms, s.qps, s.p50_us, s.p99_us
            );

            // Clone baseline: C full stores, unless that blows the
            // resident-row budget.
            if n * c > CLONE_ROW_BUDGET {
                capped.push((n, c));
                eprintln!(
                    "  n = {n:>8}  C = {c:>2}  clone   skipped: {c} copies = {} rows > budget {}",
                    n * c,
                    CLONE_ROW_BUDGET
                );
                continue;
            }
            let t0 = Instant::now();
            let clones: Vec<_> = (0..c)
                .map(|_| {
                    HiddenDbServer::new(ds.schema.clone(), ds.tuples.clone(), cfg)
                        .expect("synthetic dataset is schema-valid")
                })
                .collect();
            let clone_setup_ms = t0.elapsed().as_secs_f64() * 1e3;
            let (qps, lat) = serve(clones, per_client);
            cells.push(Cell {
                n,
                clients: c,
                mode: "clone",
                setup_ms: clone_setup_ms,
                store_copies: c,
                est_bytes: est_store_bytes(n, arity) * c as u64,
                qps,
                p50_us: percentile(&lat, 0.50) as f64 / 1e3,
                p99_us: percentile(&lat, 0.99) as f64 / 1e3,
            });
            let s = cells.last().unwrap();
            eprintln!(
                "  n = {n:>8}  C = {c:>2}  clone   setup {:>8.1} ms  {:>9.0} qps  p50 {:>7.1} µs  p99 {:>8.1} µs",
                s.setup_ms, s.qps, s.p50_us, s.p99_us
            );
        }
    }

    // Claims, asserted on whatever cells exist (quick included).
    let mut claims_ok = true;
    for &n in sizes {
        for &c in counts {
            let find = |mode: &str| {
                cells
                    .iter()
                    .find(|x| x.n == n && x.clients == c && x.mode == mode)
            };
            let (Some(shared), Some(clone)) = (find("shared"), find("clone")) else {
                continue;
            };
            // Claim 1: shared setup strictly cheaper for every C ≥ 2 —
            // in build wall time and (exactly C×) resident bytes.
            if c >= 2 {
                if shared.setup_ms >= clone.setup_ms {
                    eprintln!(
                        "CLAIM FAILED: n={n} C={c}: shared setup {:.1} ms ≥ clone {:.1} ms",
                        shared.setup_ms, clone.setup_ms
                    );
                    claims_ok = false;
                }
                if shared.est_bytes >= clone.est_bytes {
                    eprintln!("CLAIM FAILED: n={n} C={c}: shared store not smaller");
                    claims_ok = false;
                }
            }
            // Claim 2: QPS matches or beats the clone baseline at C ≥ 8
            // (identical per-query work; 0.9 allows scheduler noise).
            if c >= 8 && shared.qps < 0.9 * clone.qps {
                eprintln!(
                    "CLAIM FAILED: n={n} C={c}: shared {:.0} qps < 0.9 × clone {:.0} qps",
                    shared.qps, clone.qps
                );
                claims_ok = false;
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str("  \"pr\": 7,\n");
    json.push_str(
        "  \"description\": \"shared-read serving: aggregate QPS and p50/p99 per-query latency \
         vs concurrent client count, one shared column store (SharedServer handles) vs the \
         clone-per-client baseline; setup cost is the measured server build wall time plus an \
         estimate of resident store bytes (exact ratio C:1). Clone cells whose copies exceed \
         the resident-row budget are skipped and listed in clone_cells_capped. Asserted: shared \
         setup beats clone for every C >= 2, and shared QPS >= 0.9x clone at C >= 8\",\n",
    );
    json.push_str(&format!("  \"k\": {K},\n"));
    json.push_str(&format!("  \"clone_row_budget\": {CLONE_ROW_BUDGET},\n"));
    json.push_str(&format!(
        "  \"clone_cells_capped\": [{}],\n",
        capped
            .iter()
            .map(|(n, c)| format!("{{\"n\": {n}, \"clients\": {c}}}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"rows\": [\n");
    for (i, x) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"clients\": {}, \"mode\": \"{}\", \"setup_ms\": {:.2}, \
             \"store_copies\": {}, \"est_store_bytes\": {}, \"qps\": {:.0}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}}}{}\n",
            x.n,
            x.clients,
            x.mode,
            x.setup_ms,
            x.store_copies,
            x.est_bytes,
            x.qps,
            x.p50_us,
            x.p99_us,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH json");
    eprintln!("wrote {out_path}");
    assert!(claims_ok, "headline claims failed; see log above");
}
