//! Top-k-barrier crawl benchmark + `BENCH_pr4.json` emitter.
//!
//! The barrier crawler (`hdc-barrier`) issues the same top-k probe
//! primitive as the first paper's crawlers with a different mix — no
//! slice memoization, every discriminating child probed, every window
//! mined — which is exactly the traffic the columnar engine (PR 1),
//! `query_batch` (PR 2), and the work-stealing scheduler (PR 3) were
//! built to absorb. This bench measures all three under the new
//! workload (each row also records Hybrid's cost on the identical
//! instance, so the probe volumes can be compared honestly):
//!
//! * **engine vs legacy** (1 session, unthrottled): a full barrier crawl
//!   of each workload driven once against the columnar-engine server and
//!   once against the seed's row-at-a-time `LegacyEvaluator` on
//!   identical data and priorities. Determinism makes the two crawls
//!   issue the identical query sequence (cross-checked: same bag, same
//!   query count), so wall-clock ratio is pure evaluator speedup on the
//!   barrier's probe mix.
//! * **session scaling** (1..16 identities): the sharded barrier crawl
//!   on the work-stealing pool (`BarrierCrawler::crawl_sharded`,
//!   oversubscription factor 8) under a simulated per-query round-trip
//!   latency — the paper's metered-front-end regime; this container has
//!   one core, so backlog parallelism is what scales, exactly as in
//!   `BENCH_pr3.json`. Bags are cross-checked against ground truth at
//!   every session count, and each row records the **depth-aware
//!   merge**: the merged discovery-depth histogram (per-shard depths
//!   summed element-wise, cross-checked against the metrics
//!   aggregates).
//!
//! The Hybrid context crawl runs through the one-stop
//! `Crawl::builder()` with a streaming observer, and its
//! progressiveness statistic is computed from the `on_progress` event
//! stream — asserted identical to the report's own curve, so the
//! recorded number doubles as an end-to-end check of the event path.
//!
//! Workloads are the `BENCH_pr3` trio (Yahoo/Adult stand-ins + a uniform
//! control). Output: `BENCH_pr4.json` (override with `BENCH_OUT`;
//! `--quick` runs a smoke-sized subset for CI).

use std::sync::Mutex;
use std::time::{Duration, Instant};

use hdc_barrier::BarrierCrawler;
use hdc_core::{verify_complete, Crawl, ProgressRecorder, Sharded, Strategy};
use hdc_data::synth::SyntheticSpec;
use hdc_data::{adult, ops, yahoo, Dataset};
use hdc_server::{HiddenDbServer, LegacyEvaluator, ServerConfig};
use hdc_types::{DbError, HiddenDatabase, Query, QueryOutcome, Schema, TupleBag};

/// The seed evaluator behind the `HiddenDatabase` trait, so the barrier
/// crawler can drive it live. Built from the engine server's own row
/// order, it answers every query bit-identically to the engine (the PR 1
/// differential contract), so the crawl takes the identical path.
struct LegacyDb {
    schema: Schema,
    k: usize,
    eval: LegacyEvaluator,
    issued: u64,
}

impl LegacyDb {
    fn of(server: &HiddenDbServer) -> Self {
        LegacyDb {
            schema: server.schema().clone(),
            k: server.k(),
            eval: server.legacy_evaluator(),
            issued: 0,
        }
    }
}

impl HiddenDatabase for LegacyDb {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn k(&self) -> usize {
        self.k
    }

    fn query(&mut self, q: &Query) -> Result<QueryOutcome, DbError> {
        q.validate(&self.schema)?;
        self.issued += 1;
        Ok(self.eval.evaluate(q))
    }

    // No query_batch override: the legacy evaluator has no batch path,
    // so the default per-query loop is the honest baseline.

    fn queries_issued(&self) -> u64 {
        self.issued
    }
}

/// Simulated per-query round-trip latency (a batch of `b` siblings costs
/// `b` round-trips on a metered front end, as the cost model counts).
struct Throttled {
    inner: HiddenDbServer,
    per_query: Duration,
}

impl HiddenDatabase for Throttled {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn k(&self) -> usize {
        self.inner.k()
    }

    fn query(&mut self, q: &Query) -> Result<QueryOutcome, DbError> {
        std::thread::sleep(self.per_query);
        self.inner.query(q)
    }

    fn query_batch(&mut self, queries: &[Query]) -> Result<Vec<QueryOutcome>, DbError> {
        std::thread::sleep(self.per_query * queries.len() as u32);
        self.inner.query_batch(queries)
    }

    fn queries_issued(&self) -> u64 {
        self.inner.queries_issued()
    }
}

struct Workload {
    name: &'static str,
    ds: Dataset,
    k: usize,
}

fn workloads(quick: bool) -> Vec<Workload> {
    let yahoo_n = if quick { 2_000 } else { 16_000 };
    let adult_frac = if quick { 0.03 } else { 0.25 };
    let uniform_n = if quick { 1_500 } else { 12_000 };
    vec![
        Workload {
            name: "yahoo_make_zipf",
            ds: yahoo::generate_scaled(yahoo_n, 4),
            k: 128,
        },
        Workload {
            name: "adult_country_heavy",
            ds: ops::sample_fraction(&adult::generate(4), adult_frac, 4),
            k: 128,
        },
        Workload {
            name: "uniform_mixed",
            ds: SyntheticSpec::builder("uniform_mixed", uniform_n)
                .cat_zipf("c0", 24, 0.0)
                .int_uniform("x", 0, 99_999)
                .int_uniform("y", 0, 9_999)
                .build()
                .generate(7),
            k: 64,
        },
    ]
}

const SEED: u64 = 0xba44;
/// Oversubscription factor of the scaling runs: ~8 fine shards per
/// identity, matching the regime `BENCH_pr3.json` measured.
const OVERSUB: usize = 8;

fn serve(ds: &Dataset, k: usize) -> HiddenDbServer {
    HiddenDbServer::new(ds.schema.clone(), ds.tuples.clone(), ServerConfig { k, seed: SEED })
        .expect("generated datasets are schema-valid")
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

struct EvalRow {
    workload: &'static str,
    n: usize,
    k: usize,
    queries: u64,
    hybrid_queries: u64,
    /// Max deviation of the hybrid progressiveness curve from the
    /// diagonal, computed from the builder's streamed `on_progress`
    /// events (cross-checked against the report's own curve).
    hybrid_progress_deviation: f64,
    frontier: usize,
    beyond_frontier: usize,
    max_depth: u32,
    pivots: u64,
    engine_secs: f64,
    legacy_secs: f64,
}

struct ScaleRow {
    workload: &'static str,
    sessions: usize,
    wall: f64,
    total_queries: u64,
    busiest: u64,
    shards: usize,
    steals: u64,
    /// The depth-aware merge: element-wise sum of per-shard discovery
    /// depth histograms (depths relative to each shard's roots).
    depth_histogram: Vec<u64>,
    max_depth: u32,
}


fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let session_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8, 16] };
    let samples = if quick { 1 } else { 3 };
    let per_query = Duration::from_micros(if quick { 40 } else { 1_000 });
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_pr4.json".to_string());
    let crawler = BarrierCrawler::new();

    let mut eval_rows: Vec<EvalRow> = Vec::new();
    let mut scale_rows: Vec<ScaleRow> = Vec::new();
    let mut claims_ok = true;

    for w in workloads(quick) {
        eprintln!("{} (n = {}, k = {}) ...", w.name, w.ds.n(), w.k);

        // -------- engine vs legacy (1 session, unthrottled) --------
        // One reference crawl for the cross-check and the barrier stats.
        let mut engine_db = serve(&w.ds, w.k);
        let reference = crawler
            .crawl_report(&mut engine_db)
            .unwrap_or_else(|e| panic!("{}: barrier crawl failed: {e}", w.name));
        verify_complete(&w.ds.tuples, &reference.report)
            .unwrap_or_else(|e| panic!("{}: incomplete barrier crawl: {e}", w.name));

        let mut legacy_db = LegacyDb::of(&engine_db);
        let legacy_ref = crawler
            .crawl_report(&mut legacy_db)
            .unwrap_or_else(|e| panic!("{}: legacy barrier crawl failed: {e}", w.name));
        assert_eq!(
            reference.report.queries, legacy_ref.report.queries,
            "{}: engine and legacy crawls diverged in cost",
            w.name
        );
        let a: TupleBag = reference.report.tuples.iter().collect();
        let b: TupleBag = legacy_ref.report.tuples.iter().collect();
        assert!(a.multiset_eq(&b), "{}: engine and legacy bags diverged", w.name);

        // Context row: the first paper's Hybrid on the same instance, so
        // the JSON records how the barrier's probe volume compares to
        // the established crawler's on identical data. Driven through
        // the one-stop builder with a streaming observer, so the
        // progressiveness statistic comes from the event stream — and is
        // cross-checked against the report's own curve.
        let mut hybrid_db = serve(&w.ds, w.k);
        // `ProgressRecorder` is itself a CrawlObserver — the same type
        // that builds the report's curve internally — so the streamed
        // events can be accumulated and checked against the report
        // without any local re-implementation.
        let mut curve = ProgressRecorder::new();
        let hybrid = Crawl::builder()
            .strategy(Strategy::Hybrid)
            .observer(&mut curve)
            .run(&mut hybrid_db)
            .unwrap_or_else(|e| panic!("{}: hybrid reference crawl failed: {e}", w.name));
        assert_eq!(
            curve.points(),
            &hybrid.progress[..],
            "{}: event-derived progressiveness curve diverged from the report's",
            w.name
        );
        // Event curve ≡ report curve (asserted above), so the report's
        // own statistic *is* the event-derived one.
        let hybrid_progress_deviation = hybrid.progress_deviation();

        let mut engine_times = Vec::new();
        let mut legacy_times = Vec::new();
        for _ in 0..samples {
            let mut db = serve(&w.ds, w.k);
            let begun = Instant::now();
            crawler.crawl_report(&mut db).expect("reference crawl succeeded");
            engine_times.push(begun.elapsed().as_secs_f64());

            let mut db = LegacyDb::of(&engine_db);
            let begun = Instant::now();
            crawler.crawl_report(&mut db).expect("reference crawl succeeded");
            legacy_times.push(begun.elapsed().as_secs_f64());
        }
        let row = EvalRow {
            workload: w.name,
            n: w.ds.n(),
            k: w.k,
            queries: reference.report.queries,
            hybrid_queries: hybrid.queries,
            hybrid_progress_deviation,
            frontier: reference.frontier(),
            beyond_frontier: reference.beyond_frontier(),
            max_depth: reference.max_depth,
            pivots: reference.report.metrics.barrier_pivots,
            engine_secs: median(engine_times),
            legacy_secs: median(legacy_times),
        };
        eprintln!(
            "  {} queries (hybrid: {}), frontier {} / beyond {} (max depth {}, {} pivots)",
            row.queries, row.hybrid_queries, row.frontier, row.beyond_frontier, row.max_depth,
            row.pivots
        );
        eprintln!(
            "  engine {:.3}s   legacy {:.3}s   engine/legacy {:.2}x",
            row.engine_secs,
            row.legacy_secs,
            row.legacy_secs / row.engine_secs
        );
        if !quick && row.legacy_secs / row.engine_secs < 1.1 {
            eprintln!("  CLAIM FAILED: engine does not beat legacy by ≥1.1x");
            claims_ok = false;
        }
        eval_rows.push(row);

        // -------- session scaling (work-stealing pool, throttled) --------
        let truth_bag: TupleBag = w.ds.tuples.iter().collect();
        for &sessions in session_counts {
            let mut best: Option<ScaleRow> = None;
            for _ in 0..samples {
                let servers: Mutex<Vec<HiddenDbServer>> = Mutex::new(
                    (0..sessions + 1).map(|_| serve(&w.ds, w.k)).collect(),
                );
                let begun = Instant::now();
                let report = crawler
                    .crawl_sharded(
                        Sharded::new(sessions).oversubscribed(OVERSUB),
                        |_s| Throttled {
                            inner: servers
                                .lock()
                                .expect("server stack poisoned")
                                .pop()
                                .expect("one server per identity plus the probe"),
                            per_query,
                        },
                    )
                    .unwrap_or_else(|e| panic!("{}: sharded barrier failed: {e}", w.name));
                let wall = begun.elapsed().as_secs_f64();
                let got: TupleBag = report.sharded.merged.tuples.iter().collect();
                assert!(
                    got.multiset_eq(&truth_bag),
                    "{}: sharded barrier bag diverged at {} sessions",
                    w.name,
                    sessions
                );
                // The depth-aware merge keeps the full distribution, so
                // the deep-tuple count must reconcile with the metrics
                // aggregate at every session count.
                assert_eq!(
                    report.beyond_frontier(),
                    report.sharded.merged.metrics.barrier_deep_tuples,
                    "{}: merged depth histogram diverged from metrics at {} sessions",
                    w.name,
                    sessions
                );
                let row = ScaleRow {
                    workload: w.name,
                    sessions,
                    wall,
                    total_queries: report.sharded.merged.queries,
                    busiest: report.sharded.max_session_queries(),
                    shards: report.sharded.shards.len(),
                    steals: report.sharded.steals(),
                    depth_histogram: report.depth_histogram.clone(),
                    max_depth: report.max_depth,
                };
                if best.as_ref().is_none_or(|b| row.wall < b.wall) {
                    best = Some(row);
                }
            }
            let row = best.expect("at least one sample");
            eprintln!(
                "  s={:>2}  wall {:>7.2}s   total {:>6}q  busiest {:>6}q  {} shards, {} stolen, \
                 max depth {}",
                row.sessions,
                row.wall,
                row.total_queries,
                row.busiest,
                row.shards,
                row.steals,
                row.max_depth
            );
            scale_rows.push(row);
        }
    }

    if !quick {
        for w in ["yahoo_make_zipf", "adult_country_heavy", "uniform_mixed"] {
            let series: Vec<&ScaleRow> = scale_rows.iter().filter(|r| r.workload == w).collect();
            let base = series[0].wall;
            let at8 = series.iter().find(|r| r.sessions == 8).expect("s=8 row");
            let speedup = base / at8.wall;
            eprintln!("{w}: barrier scaling speedup at 8 sessions vs 1: {speedup:.2}x");
            if speedup < 1.5 {
                eprintln!("  CLAIM FAILED: sharded barrier not ≥1.5x at 8 sessions");
                claims_ok = false;
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str("  \"pr\": 4,\n");
    json.push_str(&format!(
        "  \"description\": \"top-k-barrier crawl (hdc-barrier) benched end to end: full-crawl \
         wall-clock engine vs seed LegacyEvaluator on identical data/priorities (identical query \
         sequences, cross-checked), and sharded barrier crawl wall-clock vs sessions on the \
         work-stealing pool (factor {OVERSUB}, simulated {}us per-query round-trip, single-core \
         container, bags cross-checked at every session count, merged discovery-depth histogram \
         recorded per row via the depth-aware sharded merge); hybrid context crawls run through \
         Crawl::builder() with progressiveness computed from the streamed on_progress events\",\n",
        per_query.as_micros()
    ));
    json.push_str(&format!("  \"latency_us\": {},\n", per_query.as_micros()));
    json.push_str(&format!("  \"oversubscription\": {OVERSUB},\n"));
    json.push_str("  \"engine_vs_legacy\": [\n");
    for (i, r) in eval_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"n\": {}, \"k\": {}, \"queries\": {}, \
             \"hybrid_queries\": {}, \"hybrid_progress_deviation\": {:.4}, \
             \"frontier\": {}, \"beyond_frontier\": {}, \
             \"max_depth\": {}, \"pivots\": {}, \
             \"engine_wall_secs\": {:.3}, \"legacy_wall_secs\": {:.3}, \
             \"engine_vs_legacy\": {:.3}}}{}\n",
            r.workload,
            r.n,
            r.k,
            r.queries,
            r.hybrid_queries,
            r.hybrid_progress_deviation,
            r.frontier,
            r.beyond_frontier,
            r.max_depth,
            r.pivots,
            r.engine_secs,
            r.legacy_secs,
            r.legacy_secs / r.engine_secs,
            if i + 1 == eval_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"scaling\": [\n");
    for (i, r) in scale_rows.iter().enumerate() {
        let base = scale_rows
            .iter()
            .find(|b| b.workload == r.workload && b.sessions == 1)
            .expect("sessions=1 row exists")
            .wall;
        let hist = r
            .depth_histogram
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"sessions\": {}, \"wall_secs\": {:.3}, \
             \"speedup_vs_1\": {:.3}, \"total_queries\": {}, \"max_session_queries\": {}, \
             \"shards\": {}, \"steals\": {}, \"max_depth\": {}, \
             \"depth_histogram\": [{}]}}{}\n",
            r.workload,
            r.sessions,
            r.wall,
            base / r.wall,
            r.total_queries,
            r.busiest,
            r.shards,
            r.steals,
            r.max_depth,
            hist,
            if i + 1 == scale_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH json");
    eprintln!("wrote {out_path}");
    assert!(claims_ok, "headline claims failed; see log above");
}
