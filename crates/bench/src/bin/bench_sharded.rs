//! Multi-session scaling benchmark + `BENCH_pr3.json` emitter.
//!
//! ROADMAP's missing number: measured wall-clock vs `sessions` for the
//! sharded crawler on Figure 12-style datasets, comparing the historical
//! **static** placement (one shard per session thread, `factor = 1`)
//! against the **work-stealing** scheduler with an over-partitioned plan
//! (`factor = 8`: ~8 fine-grained shards per identity, dealt
//! dynamically).
//!
//! # What "wall-clock" means here
//!
//! The paper's setting is a *remote* top-`k` front end metering queries
//! per client identity (§1.1): real crawls are bound by per-query
//! round-trips, not by the crawler's CPU — and this container has a
//! single hardware core, so raw CPU parallelism could not show scaling
//! even where the real system would. The bench therefore wraps every
//! session's connection in a [`Throttled`] decorator charging a fixed
//! simulated latency per query (sleeps overlap across threads exactly
//! like concurrent network waits do). Wall-clock then measures what it
//! measures in production: the busiest identity's query backlog, i.e.
//! `max_session_queries × latency` plus scheduling overhead. Total query
//! counts, per-shard costs, and extracted bags are measured exactly and
//! cross-checked between the two schedulers (the stealing scheduler must
//! pay *its plan's* cost and nothing more).
//!
//! Datasets (Figure 12 stand-ins + a control):
//!
//! * `yahoo_make_zipf` — Yahoo! Autos scaled: partition attribute Make
//!   (85 values, Zipf-skewed). Static round-robin dealing leaves one
//!   identity with the heavy values; stealing re-balances dynamically.
//! * `adult_country_heavy` — Adult census sample: partition attribute
//!   Country, whose value 0 holds ~90% of all tuples. The only way to
//!   beat one identity grinding that subtree is the over-partitioned
//!   plan's *sub-splitting* (Country = 0 cut by the secondary
//!   attribute), which the static one-shard-per-value plan cannot do.
//! * `uniform_mixed` — no skew: both schedulers should tie (honest
//!   control; stealing must not cost wall-clock when there is nothing to
//!   re-balance).
//!
//! Output: `BENCH_pr3.json` (override path with `BENCH_OUT`; `--quick`
//! runs a smoke-sized subset for CI).

use std::sync::Mutex;
use std::time::{Duration, Instant};

use hdc_core::{verify_complete, Sharded, ShardedReport};
use hdc_data::synth::SyntheticSpec;
use hdc_data::{adult, ops, yahoo, Dataset};
use hdc_server::{HiddenDbServer, ServerConfig};
use hdc_types::{DbError, HiddenDatabase, Query, QueryOutcome, Schema, TupleBag};

/// Simulated per-query round-trip latency. Applied per *query* (a batch
/// of `b` sibling queries costs `b` round-trips on a metered front end,
/// exactly like the paper's cost model counts them).
struct Throttled {
    inner: HiddenDbServer,
    per_query: Duration,
}

impl HiddenDatabase for Throttled {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn k(&self) -> usize {
        self.inner.k()
    }

    fn query(&mut self, q: &Query) -> Result<QueryOutcome, DbError> {
        std::thread::sleep(self.per_query);
        self.inner.query(q)
    }

    fn query_batch(&mut self, queries: &[Query]) -> Result<Vec<QueryOutcome>, DbError> {
        std::thread::sleep(self.per_query * queries.len() as u32);
        self.inner.query_batch(queries)
    }

    fn queries_issued(&self) -> u64 {
        self.inner.queries_issued()
    }
}

struct Workload {
    name: &'static str,
    skewed: bool,
    ds: Dataset,
    k: usize,
}

fn workloads(quick: bool) -> Vec<Workload> {
    let yahoo_n = if quick { 3_000 } else { 24_000 };
    let adult_frac = if quick { 0.04 } else { 0.35 };
    let uniform_n = if quick { 2_000 } else { 16_000 };
    vec![
        Workload {
            name: "yahoo_make_zipf",
            skewed: true,
            ds: yahoo::generate_scaled(yahoo_n, 4),
            k: 128,
        },
        Workload {
            name: "adult_country_heavy",
            skewed: true,
            ds: ops::sample_fraction(&adult::generate(4), adult_frac, 4),
            k: 128,
        },
        Workload {
            name: "uniform_mixed",
            skewed: false,
            ds: SyntheticSpec::builder("uniform_mixed", uniform_n)
                .cat_zipf("c0", 24, 0.0)
                .int_uniform("x", 0, 99_999)
                .int_uniform("y", 0, 9_999)
                .build()
                .generate(7),
            k: 64,
        },
    ]
}

const SEED: u64 = 0x5ea1;
/// Oversubscription factor of the stealing configuration: ~12 fine
/// shards per identity. High enough that `sessions × factor` exceeds
/// every partition domain here (85, 41, 24) from 8 sessions up, so the
/// skew-critical sub-splitting paths engage where the acceptance claims
/// are made.
const OVERSUB: usize = 12;

/// One timed crawl. Servers are pre-built *outside* the timed window
/// (construction sorts and indexes the whole table — at 32 sessions that
/// would otherwise dwarf the crawl itself) and handed out through a
/// stack; all are identical, so hand-out order is irrelevant.
fn run_once(
    w: &Workload,
    sessions: usize,
    factor: usize,
    per_query: Duration,
) -> (ShardedReport, f64) {
    let servers: Mutex<Vec<HiddenDbServer>> = Mutex::new(
        (0..sessions + 1)
            .map(|_| {
                HiddenDbServer::new(
                    w.ds.schema.clone(),
                    w.ds.tuples.clone(),
                    ServerConfig { k: w.k, seed: SEED },
                )
                .expect("generated datasets are schema-valid")
            })
            .collect(),
    );
    let begun = Instant::now();
    let report = Sharded::new(sessions)
        .oversubscribed(factor)
        .crawl(|_s| Throttled {
            inner: servers
                .lock()
                .expect("server stack poisoned")
                .pop()
                .expect("pre-built one server per identity plus the probe"),
            per_query,
        })
        .unwrap_or_else(|e| panic!("{}: sharded crawl failed: {e}", w.name));
    let wall = begun.elapsed().as_secs_f64();
    verify_complete(&w.ds.tuples, &report.merged)
        .unwrap_or_else(|e| panic!("{}: incomplete crawl: {e}", w.name));
    (report, wall)
}

/// Best-of-`samples` wall clock (query counts and bags are deterministic
/// across samples; the minimum is the right statistic for sleep-driven
/// timing, where noise is strictly additive scheduler jitter).
fn run_best(
    w: &Workload,
    sessions: usize,
    factor: usize,
    per_query: Duration,
    samples: usize,
) -> (ShardedReport, f64) {
    let mut best = run_once(w, sessions, factor, per_query);
    for _ in 1..samples {
        let next = run_once(w, sessions, factor, per_query);
        if next.1 < best.1 {
            best = next;
        }
    }
    best
}

struct Row {
    workload: &'static str,
    skewed: bool,
    n: usize,
    k: usize,
    sessions: usize,
    static_wall: f64,
    steal_wall: f64,
    static_total: u64,
    steal_total: u64,
    static_max_session: u64,
    steal_max_session: u64,
    steal_shards: usize,
    steals: u64,
    injected: u64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let session_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8, 16, 32] };
    // Real metered front ends cost 50–500 ms per round trip; 2 ms is a
    // conservative stand-in that still dwarfs both scheduler overhead
    // and per-sleep timer overshoot (the dominant noise source on a
    // shared host).
    let per_query = Duration::from_micros(if quick { 40 } else { 2_000 });
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_pr3.json".to_string());

    let mut rows: Vec<Row> = Vec::new();
    let mut claims_ok = true;
    for w in workloads(quick) {
        eprintln!(
            "{} (n = {}, k = {}, {}) ...",
            w.name,
            w.ds.n(),
            w.k,
            if w.skewed { "skewed" } else { "uniform" }
        );
        let mut reference_bag: Option<TupleBag> = None;
        let samples = if quick { 1 } else { 3 };
        for &sessions in session_counts {
            let (static_rep, static_wall) = run_best(&w, sessions, 1, per_query, samples);
            let (steal_rep, steal_wall) = run_best(&w, sessions, OVERSUB, per_query, samples);
            // Determinism cross-check: both schedulers, at every session
            // count, extract the identical bag.
            let bag: TupleBag = static_rep.merged.tuples.iter().collect();
            let steal_bag: TupleBag = steal_rep.merged.tuples.iter().collect();
            assert!(bag.multiset_eq(&steal_bag), "{}: bags diverged", w.name);
            if let Some(reference) = &reference_bag {
                assert!(reference.multiset_eq(&bag), "{}: bag changed with sessions", w.name);
            } else {
                reference_bag = Some(bag);
            }
            let row = Row {
                workload: w.name,
                skewed: w.skewed,
                n: w.ds.n(),
                k: w.k,
                sessions,
                static_wall,
                steal_wall,
                static_total: static_rep.merged.queries,
                steal_total: steal_rep.merged.queries,
                static_max_session: static_rep.max_session_queries(),
                steal_max_session: steal_rep.max_session_queries(),
                steal_shards: steal_rep.shards.len(),
                steals: steal_rep.steals(),
                injected: steal_rep.pool.injected(),
            };
            eprintln!(
                "  s={sessions:>2}  static {:>7.2}s (busiest {:>6}q)   steal {:>7.2}s \
                 (busiest {:>6}q, {} shards, {} dealt, {} stolen)   steal/static {:.2}x",
                row.static_wall,
                row.static_max_session,
                row.steal_wall,
                row.steal_max_session,
                row.steal_shards,
                row.injected,
                row.steals,
                row.static_wall / row.steal_wall,
            );
            rows.push(row);
        }
    }

    // Headline claims, checked at record time (full runs only — the
    // quick smoke is too small for timing claims).
    if !quick {
        let mut best_at8 = 0.0f64;
        for w in ["yahoo_make_zipf", "adult_country_heavy"] {
            let series: Vec<&Row> = rows.iter().filter(|r| r.workload == w).collect();
            let base = series[0].steal_wall;
            let speedups: Vec<f64> = series.iter().map(|r| base / r.steal_wall).collect();
            eprintln!("{w}: stealing wall-clock speedup vs 1 session: {speedups:.2?}");
            // Growing with sessions up to 8 (small tolerance for timer
            // jitter); past 8, skew-gated workloads may saturate at the
            // heaviest sub-shard, which is physics, not a regression.
            let through_8 = series.iter().position(|r| r.sessions == 8).expect("s=8 row") + 1;
            let growing = speedups[..through_8].windows(2).all(|p| p[1] >= p[0] * 0.95);
            if !growing || speedups[through_8 - 1] < 2.0 {
                eprintln!("  CLAIM FAILED: speedup not growing through 8 sessions");
                claims_ok = false;
            }
            let at8 = series.iter().find(|r| r.sessions == 8).expect("sessions=8 row");
            let ratio = at8.static_wall / at8.steal_wall;
            eprintln!("{w}: steal vs static at 8 sessions: {ratio:.2}x");
            best_at8 = best_at8.max(ratio);
        }
        // Acceptance line: the stealing scheduler beats static placement
        // ≥ 1.2× at 8 sessions on at least one skewed workload.
        if best_at8 < 1.2 {
            eprintln!("CLAIM FAILED: no skewed workload reaches 1.2x over static at 8 sessions");
            claims_ok = false;
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str("  \"pr\": 3,\n");
    json.push_str(&format!(
        "  \"description\": \"sharded crawl wall-clock vs sessions: static one-shard-per-session \
         placement (factor 1) vs work-stealing over-partitioned plan (factor {OVERSUB}); \
         per-query simulated round-trip latency {}us (the paper's metered-front-end setting; \
         single-core container), bags cross-checked identical across schedulers and session \
         counts\",\n",
        per_query.as_micros()
    ));
    json.push_str(&format!("  \"latency_us\": {},\n", per_query.as_micros()));
    json.push_str(&format!("  \"oversubscription\": {OVERSUB},\n"));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let base_steal = rows
            .iter()
            .find(|b| b.workload == r.workload && b.sessions == 1)
            .expect("sessions=1 row exists")
            .steal_wall;
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"skewed\": {}, \"n\": {}, \"k\": {}, \"sessions\": {}, \
             \"static_wall_secs\": {:.3}, \"steal_wall_secs\": {:.3}, \
             \"steal_vs_static\": {:.3}, \"steal_speedup_vs_1\": {:.3}, \
             \"static_total_queries\": {}, \"steal_total_queries\": {}, \
             \"static_max_session_queries\": {}, \"steal_max_session_queries\": {}, \
             \"steal_shards\": {}, \"injector_dealt\": {}, \"steals\": {}}}{}\n",
            r.workload,
            r.skewed,
            r.n,
            r.k,
            r.sessions,
            r.static_wall,
            r.steal_wall,
            r.static_wall / r.steal_wall,
            base_steal / r.steal_wall,
            r.static_total,
            r.steal_total,
            r.static_max_session,
            r.steal_max_session,
            r.steal_shards,
            r.injected,
            r.steals,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH json");
    eprintln!("wrote {out_path}");
    assert!(claims_ok, "headline claims failed; see log above");
}
