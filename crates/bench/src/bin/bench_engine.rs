//! Engine micro-benchmark + `BENCH_pr1.json` emitter.
//!
//! Measures median queries/second of the columnar engine (the live
//! `HiddenDbServer::query` path) against the seed's row-at-a-time
//! evaluator (`LegacyEvaluator`, preserved verbatim including its
//! deep-copy materialization) on identical data and priorities, across
//! the workloads the planner distinguishes, at n ∈ {10k, 100k, 1M}.
//!
//! The numbers land in `BENCH_pr1.json` (override the path with
//! `BENCH_OUT`) so later PRs have a perf trajectory to compare against.
//! Pass `--quick` to halve sampling for smoke runs.
//!
//! Workloads are named for their *query shape*; the strategy the
//! engine's planner actually chose is measured per workload (via
//! `ServerStats` deltas) and recorded in the JSON as `"plan"`:
//!
//! * `dense_conjunction` is the seed's worst case: two individually
//!   dense predicates (~50% each) whose conjunction is **empty** by
//!   construction, so evaluation must walk the whole table. The seed
//!   scans tuple by tuple matching `Value` enums; the engine intersects
//!   the predicates' bitset blocks over primitive columns.
//! * `probe_eq` / `probe_range` are the selective single-predicate
//!   probes that dominate deep crawl trees.
//! * `selective_conj_cat` / `selective_conj_num` are selective
//!   multi-predicate conjunctions; both evaluators drive the smallest
//!   index list — the seed re-filters row-at-a-time, the engine uses
//!   O(1) columnar residual checks (which measured faster than galloping
//!   a second sorted list; see `crates/server/src/engine.rs`).
//! * `root_any` overflows immediately; it isolates response
//!   materialization (zero-clone vs deep copy).

use std::time::Instant;

use hdc_bench::engine_workload::{rows, schema, workloads};
use hdc_server::{HiddenDbServer, LegacyEvaluator, ServerConfig};
use hdc_types::{HiddenDatabase, Query};

const K: usize = 256;
const SCALES: [usize; 3] = [10_000, 100_000, 1_000_000];

/// Which strategy the planner chose for `q`, observed via the stats
/// counters (so the record reflects measurement, not assumption).
fn observed_plan(server: &mut HiddenDbServer, q: &Query) -> &'static str {
    let before = server.stats();
    server.query(q).expect("workload queries are valid");
    let after = server.stats();
    if after.scan_evals > before.scan_evals {
        "scan"
    } else if after.probe_evals > before.probe_evals {
        "probe"
    } else {
        "intersect"
    }
}

/// Median nanoseconds per call of `f`, over `samples` samples of
/// adaptively-sized batches.
fn median_ns(samples: usize, mut f: impl FnMut() -> usize) -> f64 {
    // Calibrate the batch to ~20ms.
    let mut batch = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        if start.elapsed().as_millis() >= 20 || batch >= 1 << 30 {
            break;
        }
        batch *= 4;
    }
    let mut per_call: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            start.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    per_call.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    per_call[per_call.len() / 2]
}

struct Row {
    workload: &'static str,
    plan: &'static str,
    n: usize,
    engine_qps: f64,
    legacy_qps: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let samples = if quick { 5 } else { 11 };
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_pr1.json".to_string());

    let mut results: Vec<Row> = Vec::new();
    for &n in &SCALES {
        eprintln!("building n = {n} ...");
        let table = rows(n);
        let mut server = HiddenDbServer::new(schema(), table, ServerConfig { k: K, seed: 0xbe7c })
            .expect("bench table is schema-valid");
        let legacy: LegacyEvaluator = server.legacy_evaluator();

        for (name, q) in workloads() {
            let plan = observed_plan(&mut server, &q);
            let engine_ns = median_ns(samples, || server.query(&q).unwrap().tuples.len());
            let legacy_ns = median_ns(samples, || legacy.evaluate(&q).tuples.len());
            let row = Row {
                workload: name,
                plan,
                n,
                engine_qps: 1e9 / engine_ns,
                legacy_qps: 1e9 / legacy_ns,
            };
            eprintln!(
                "  {:<20} n={:<9} plan={:<9} engine {:>12.0} q/s   legacy {:>12.0} q/s   speedup {:>6.2}x",
                row.workload,
                row.n,
                row.plan,
                row.engine_qps,
                row.legacy_qps,
                row.engine_qps / row.legacy_qps
            );
            results.push(row);
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str("  \"pr\": 1,\n");
    json.push_str(&format!("  \"k\": {K},\n"));
    json.push_str(
        "  \"description\": \"median queries/sec, columnar engine (HiddenDbServer::query) \
         vs seed row-at-a-time evaluator (LegacyEvaluator), identical data and priorities\",\n",
    );
    json.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"plan\": \"{}\", \"n\": {}, \"engine_qps\": {:.1}, \
             \"legacy_qps\": {:.1}, \"speedup\": {:.3}}}{}\n",
            r.workload,
            r.plan,
            r.n,
            r.engine_qps,
            r.legacy_qps,
            r.engine_qps / r.legacy_qps,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH json");
    eprintln!("wrote {out_path}");
}
