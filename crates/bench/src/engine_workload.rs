//! The shared table + query shapes for the engine micro-benchmarks.
//!
//! Both the `bench_engine` bin (the `BENCH_pr1.json` emitter) and the
//! `engine` criterion bench measure this fixture, so their numbers are
//! comparable: a deterministic 6-attribute table whose first categorical
//! column is **anti-correlated** with the last numeric one — the dense
//! conjunction over those two has individually ~50% selectivity but an
//! empty result, which is exactly the shape that forces a full-table
//! walk (the seed evaluator's worst case).

use hdc_types::{Predicate, Query, Schema, Tuple, Value};

/// SplitMix64: deterministic column fill without depending on `rand`.
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The benchmark schema: three categorical and three numeric attributes.
pub fn schema() -> Schema {
    Schema::builder()
        .categorical("a", 2)
        .categorical("b", 256)
        .categorical("e", 16)
        .numeric("c", 0, 999_999)
        .numeric("f", 0, 99_999)
        .numeric("d", 0, 999)
        .build()
        .expect("static schema is valid")
}

/// Deterministic table: `a` and `d` are anti-correlated (the dense
/// conjunction's empty needle), the rest are hashed uniform.
pub fn rows(n: usize) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            let i = i as u64;
            let phase = i % 1000;
            Tuple::new(vec![
                Value::Cat(u32::from(phase >= 505)),
                Value::Cat((mix(i ^ 0xb0b) % 256) as u32),
                Value::Cat((mix(i ^ 0xe11e) % 16) as u32),
                Value::Int((mix(i ^ 0xcccc) % 1_000_000) as i64),
                Value::Int((mix(i ^ 0xf00f) % 100_000) as i64),
                Value::Int(phase as i64),
            ])
        })
        .collect()
}

/// The named query shapes measured across scales (see the module docs of
/// `bench_engine` for what each one stresses).
pub fn workloads() -> Vec<(&'static str, Query)> {
    let any = Query::any(6);
    vec![
        // a = 0 (rows with phase < 505, ~50.5%) ∧ d ∈ [505, 999]
        // (phase ≥ 505, ~49.5%): individually dense, jointly empty.
        (
            "dense_conjunction",
            any.with_pred(0, Predicate::Eq(0))
                .with_pred(5, Predicate::Range { lo: 505, hi: 999 }),
        ),
        ("probe_eq", any.with_pred(1, Predicate::Eq(17))),
        (
            "probe_range",
            any.with_pred(3, Predicate::Range { lo: 0, hi: 9_999 }),
        ),
        (
            "selective_conj_cat",
            any.with_pred(1, Predicate::Eq(17))
                .with_pred(2, Predicate::Eq(3)),
        ),
        (
            "selective_conj_num",
            any.with_pred(3, Predicate::Range { lo: 0, hi: 3_999 })
                .with_pred(4, Predicate::Range { lo: 0, hi: 399 }),
        ),
        ("root_any", any),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_deterministic_and_schema_valid() {
        let s = schema();
        let a = rows(500);
        let b = rows(500);
        assert_eq!(a, b);
        for t in &a {
            s.validate_tuple(t).unwrap();
        }
    }

    #[test]
    fn dense_conjunction_is_empty_by_construction() {
        let (_, q) = workloads()
            .into_iter()
            .find(|(name, _)| *name == "dense_conjunction")
            .unwrap();
        assert!(rows(5_000).iter().all(|t| !q.matches(t)));
    }

    #[test]
    fn workload_queries_validate() {
        let s = schema();
        for (name, q) in workloads() {
            q.validate(&s).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
