//! Shared harness for the figure-regeneration benchmarks.
//!
//! Every bench target under `benches/` reproduces one artifact of the
//! paper's evaluation (§6) or lower-bound section (§4): it builds the
//! synthetic dataset, serves it through the simulator, runs the paper's
//! algorithms, prints the same rows/series the paper plots, dumps a CSV
//! under `target/figures/`, and checks the qualitative *shape* claims
//! (who wins, scaling behaviour, crossovers) that must transfer from the
//! paper to the synthetic stand-ins. Absolute query counts depend on the
//! data generator and are recorded in `EXPERIMENTS.md`, not asserted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use hdc_core::{verify_complete, CrawlError, CrawlReport, Crawler};
use hdc_data::Dataset;
use hdc_server::{HiddenDbServer, ServerConfig};

pub mod engine_workload;
pub mod refdata;

/// Serves a dataset through the simulator.
pub fn serve(ds: &Dataset, k: usize, seed: u64) -> HiddenDbServer {
    HiddenDbServer::new(
        ds.schema.clone(),
        ds.tuples.clone(),
        ServerConfig { k, seed },
    )
    .expect("generated datasets are schema-valid")
}

/// A completed measurement: the crawl report plus wall time.
pub struct Measurement {
    /// The crawl report (queries, tuples, progress).
    pub report: CrawlReport,
    /// Wall-clock seconds for the whole crawl (simulator included).
    pub secs: f64,
}

/// Runs a crawler against a dataset and verifies completeness; panics on
/// an incomplete crawl (a bench must never silently publish wrong data).
pub fn crawl(crawler: &dyn Crawler, ds: &Dataset, k: usize, seed: u64) -> Measurement {
    let mut db = serve(ds, k, seed);
    let start = Instant::now();
    let report = crawler
        .crawl(&mut db)
        .unwrap_or_else(|e| panic!("{} failed on {} (k={k}): {e}", crawler.name(), ds.name));
    let secs = start.elapsed().as_secs_f64();
    verify_complete(&ds.tuples, &report)
        .unwrap_or_else(|e| panic!("{} incomplete on {} (k={k}): {e}", crawler.name(), ds.name));
    Measurement { report, secs }
}

/// Runs a crawler expecting the crawl to be infeasible (for the Yahoo
/// k = 64 gap of Figure 12). Returns the partial report.
pub fn crawl_expect_unsolvable(
    crawler: &dyn Crawler,
    ds: &Dataset,
    k: usize,
    seed: u64,
) -> CrawlReport {
    let mut db = serve(ds, k, seed);
    match crawler.crawl(&mut db) {
        Err(CrawlError::Unsolvable { partial, .. }) => *partial,
        Err(e) => panic!(
            "{} failed for the wrong reason on {}: {e}",
            crawler.name(),
            ds.name
        ),
        Ok(r) => panic!(
            "{} unexpectedly succeeded on {} at k={k} ({} queries)",
            crawler.name(),
            ds.name,
            r.queries
        ),
    }
}

/// A plain-text column-aligned table, printed to stdout and convertible
/// to CSV.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringifying each cell).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Prints the table with aligned columns.
    pub fn print(&self) {
        println!("\n=== {} ===", self.title);
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.header));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }

    /// Writes the table as `target/figures/<name>.csv` (workspace-level
    /// `target/`), so plots can be regenerated outside Rust.
    pub fn write_csv(&self, name: &str) {
        let dir = figures_dir();
        fs::create_dir_all(&dir).expect("create target/figures");
        let path = dir.join(format!("{name}.csv"));
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        fs::write(&path, out).expect("write CSV");
        println!("[csv] {}", path.display());
    }
}

/// `<workspace>/target/figures`.
pub fn figures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures")
}

/// Accumulates qualitative shape checks and prints a PASS/FAIL summary.
///
/// Checks are non-fatal by default (benches should keep producing data
/// even when a shape drifts); set `HDC_STRICT=1` to turn failures into
/// panics (CI mode).
#[derive(Default)]
pub struct ShapeChecks {
    passed: usize,
    failures: Vec<String>,
}

impl ShapeChecks {
    /// A fresh checker.
    pub fn new() -> Self {
        ShapeChecks::default()
    }

    /// Records one expectation.
    pub fn check(&mut self, label: &str, ok: bool) {
        if ok {
            self.passed += 1;
            println!("  [shape PASS] {label}");
        } else {
            self.failures.push(label.to_string());
            println!("  [shape FAIL] {label}");
        }
    }

    /// Prints the summary; panics on failures when `HDC_STRICT=1`.
    pub fn finish(self) {
        let total = self.passed + self.failures.len();
        println!("\nshape checks: {}/{} passed", self.passed, total);
        if !self.failures.is_empty() {
            println!("failed: {:?}", self.failures);
            if std::env::var("HDC_STRICT").as_deref() == Ok("1") {
                panic!("shape checks failed in strict mode");
            }
        }
    }
}

/// Formats a ratio like `3.94×`.
pub fn ratio(a: u64, b: u64) -> String {
    if b == 0 {
        "∞".to_string()
    } else {
        format!("{:.2}×", a as f64 / b as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_core::RankShrink;
    use hdc_data::hard;

    #[test]
    fn crawl_helper_verifies_completeness() {
        let ds = hard::numeric_hard(4, 2, 5);
        let m = crawl(&RankShrink::new(), &ds, 4, 0);
        assert_eq!(m.report.tuples.len(), ds.n());
        assert!(m.secs >= 0.0);
    }

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&[&1, &"x"]);
        t.row(&[&22, &"yy"]);
        t.print();
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&[&1]);
    }

    #[test]
    fn shape_checks_count() {
        let mut c = ShapeChecks::new();
        c.check("ok", true);
        c.check("bad", false);
        assert_eq!(c.passed, 1);
        assert_eq!(c.failures.len(), 1);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(10, 4), "2.50×");
        assert_eq!(ratio(1, 0), "∞");
    }
}
