//! The paper's published expectations, stated qualitatively.
//!
//! The evaluation figures (10–13) are plots; exact values are not
//! tabulated in the paper, and our datasets are synthetic stand-ins, so
//! the reproduction targets the *shape claims* the paper makes in prose.
//! Each constant below quotes or paraphrases §6 and is printed alongside
//! the regenerated table so a reader can compare claim vs. measurement.

/// Figure 10 (numeric algorithms, Adult-numeric).
pub const FIG10: &[&str] = &[
    "rank-shrink consistently outperformed binary-shrink in all cases",
    "the cost of rank-shrink was linear to n and inversely linear to k \
     (half as many queries each time k doubled)",
    "the cost of rank-shrink stayed nearly the same as d increased \
     (3-way splits are rare on this data)",
];

/// Figure 11 (categorical algorithms, NSF).
pub const FIG11: &[&str] = &[
    "slice-cover, even being asymptotically optimal, turned out to exhibit \
     the worst performance",
    "lazy-slice-cover was the clear winner in all the experiments \
     (log-scale gap)",
    "DFS sits between the two",
];

/// Figure 12 (hybrid, Yahoo + Adult).
pub const FIG12: &[&str] = &[
    "no reported value for Yahoo at k = 64: it has more than 64 identical \
     tuples, so no algorithm can extract it in full",
    "cost decreases as k grows",
    "~200-400 queries suffice at k = 1000 for the 69,768-tuple Yahoo \
     dataset (the §1.2 headline)",
];

/// Figure 13 (progressiveness, k = 256).
pub const FIG13: &[&str] = &[
    "linear progressiveness for both datasets: x% of the queries yields \
     roughly x% of the tuples",
];

/// Theorem 3 (numeric lower bound).
pub const THM3: &[&str] = &[
    "any algorithm must use at least d·m queries on the Figure 7 dataset",
    "rank-shrink stays within the O(d·n/k) upper bound, so measured cost \
     is sandwiched within constant factors of optimal",
];

/// Theorem 4 (categorical lower bound).
pub const THM4: &[&str] = &[
    "any algorithm must use Ω(d·U²) queries on the Figure 8 dataset \
     (under the side conditions d = 2k, u ≥ 3, k ≥ 3, d·U² ≤ 2^{d/4})",
    "slice-cover's Lemma 4 bound is within a constant factor of that",
];

/// Prints a claims block.
pub fn print_claims(title: &str, claims: &[&str]) {
    println!("\npaper claims ({title}):");
    for c in claims {
        println!("  • {c}");
    }
}
