//! The wire client: [`HttpDb`] implements
//! [`HiddenDatabase`] over a loopback HTTP connection, and
//! [`HttpConnector`] implements [`Connector`] so
//! `Crawl::builder().run_sharded(connector)` drives remote identities
//! exactly like in-process closures.
//!
//! # Error mapping — the whole point
//!
//! Everything the wire can do to a request maps into the existing
//! [`DbError`] taxonomy, so `RetryPolicy`, per-identity strikes, and
//! checkpoint/resume work over the network *unchanged*:
//!
//! | wire event | mapped to |
//! |------------|-----------|
//! | read/write timeout, connection reset, EOF mid-response | [`DbError::Transient`] (stream dropped; next call reconnects) |
//! | HTTP 5xx (e.g. the server fault injector's 503) | [`DbError::Transient`] (connection kept) |
//! | HTTP 429 budget body | [`DbError::BudgetExhausted`] field-exact |
//! | other HTTP 4xx | [`DbError::Backend`] (permanent) |
//! | malformed response on a 200 | [`DbError::Transient`] (stream dropped — body may be damaged in flight) |
//! | retire-threshold-th consecutive failure ([`DEFAULT_RETIRE_AFTER`]) | [`DbError::Backend`] — the identity is retired |
//!
//! # Health tracking
//!
//! Each connection counts *consecutive* failures; any success resets the
//! count. A failure drops the stream so the next call reconnects with a
//! fresh TCP connection; once the count reaches the retire threshold the
//! identity stops trying and fails permanently, which is exactly the
//! signal the sharded crawler's identity-health salvage understands.
//!
//! # Accounting parity
//!
//! The client validates queries locally against the fetched schema
//! (charge-nothing [`DbError::InvalidQuery`], same as the server) and
//! counts [`HttpDb::queries_issued`] client-side: +1 per successful
//! query, +`len` per successful batch, +0 on any error — matching
//! `ServerClient`'s all-or-nothing accounting so wire crawls reconcile
//! bit-identically with in-process ones.

use std::io::{self, BufReader, ErrorKind};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use hdc_core::Connector;
use hdc_types::{DbError, HiddenDatabase, Query, QueryOutcome, Schema};

use crate::bucket::RateLimiter;
use crate::http::{self, Response};
use crate::proto;

/// Handles to the wire-client metrics, resolved once.
struct ClientMetrics {
    /// `hdc_wire_client_requests_total`: completed exchanges.
    requests: Arc<hdc_obs::Counter>,
    /// `hdc_wire_client_request_seconds`: write-to-parse wall time.
    request_wall: Arc<hdc_obs::Histogram>,
    /// `hdc_wire_client_wire_failures_total`: dropped-stream failures.
    wire_failures: Arc<hdc_obs::Counter>,
    /// `hdc_wire_client_timeouts_total`: failures that were timeouts.
    timeouts: Arc<hdc_obs::Counter>,
    /// `hdc_wire_client_reconnects_total`: fresh TCP connections after
    /// a previous one was dropped.
    reconnects: Arc<hdc_obs::Counter>,
    /// `hdc_wire_client_retired_total`: identities failed permanently.
    retired: Arc<hdc_obs::Counter>,
}

fn client_metrics() -> &'static ClientMetrics {
    static METRICS: OnceLock<ClientMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = hdc_obs::registry();
        ClientMetrics {
            requests: r.counter(
                "hdc_wire_client_requests_total",
                "Request/response exchanges completed by wire clients",
            ),
            request_wall: r.histogram(
                "hdc_wire_client_request_seconds",
                "Wall time of wire-client request/response exchanges",
                hdc_obs::latency_bounds(),
                hdc_obs::Unit::Nanos,
            ),
            wire_failures: r.counter(
                "hdc_wire_client_wire_failures_total",
                "Wire-client exchanges that dropped the stream (any io damage)",
            ),
            timeouts: r.counter(
                "hdc_wire_client_timeouts_total",
                "Wire-client exchanges that failed on a read/write timeout",
            ),
            reconnects: r.counter(
                "hdc_wire_client_reconnects_total",
                "Fresh TCP connections opened after a previous one dropped",
            ),
            retired: r.counter(
                "hdc_wire_client_retired_total",
                "Wire identities retired at the consecutive-failure threshold",
            ),
        }
    })
}

/// Default client read/write timeout.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(5);
/// Default consecutive-failure threshold before an identity retires.
pub const DEFAULT_RETIRE_AFTER: u32 = 8;

/// Connection factory for [`HttpDb`] identities: fetches the remote
/// schema once (eagerly, at construction), then mints any number of
/// independent per-identity connections.
///
/// Implements [`Connector`], so it drops into
/// `Crawl::builder().run_sharded(..)` wherever a `Fn(usize) -> D`
/// closure went before.
#[derive(Debug, Clone)]
pub struct HttpConnector {
    addr: String,
    info: proto::SchemaInfo,
    timeout: Duration,
    retire_after: u32,
    rate: Option<(f64, f64)>,
}

impl HttpConnector {
    /// Connects to `url` (`host:port`, optionally prefixed with
    /// `http://`) and fetches `/schema`, so every later
    /// [`connect`](Connector::connect) is infallible and every
    /// [`HttpDb`] knows its schema and `k` locally.
    pub fn new(url: &str) -> io::Result<HttpConnector> {
        let addr = strip_scheme(url).to_string();
        let timeout = DEFAULT_TIMEOUT;
        let info = fetch_schema(&addr, timeout)?;
        Ok(HttpConnector {
            addr,
            info,
            timeout,
            retire_after: DEFAULT_RETIRE_AFTER,
            rate: None,
        })
    }

    /// Sets the read/write timeout for every minted connection.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the consecutive-failure threshold after which an identity
    /// retires permanently (clamped to at least 1).
    pub fn retire_after(mut self, failures: u32) -> Self {
        self.retire_after = failures.max(1);
        self
    }

    /// Paces each identity with a token bucket: at most `rate` queries
    /// per second sustained, with room for `burst` queries at once.
    pub fn rate_limit(mut self, rate: f64, burst: f64) -> Self {
        self.rate = Some((rate, burst));
        self
    }

    /// The remote database's shape, as fetched at construction.
    pub fn info(&self) -> &proto::SchemaInfo {
        &self.info
    }

    /// The server address (scheme stripped).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// One remote identity, outside any crawl (for probes and tests).
    pub fn db(&self, identity: usize) -> HttpDb {
        self.connect(identity)
    }
}

impl Connector for HttpConnector {
    type Db = HttpDb;

    fn connect(&self, identity: usize) -> HttpDb {
        HttpDb {
            addr: self.addr.clone(),
            identity,
            schema: self.info.schema.clone(),
            k: self.info.k,
            timeout: self.timeout,
            retire_after: self.retire_after,
            limiter: self.rate.map(|(rate, burst)| RateLimiter::new(rate, burst)),
            conn: None,
            ever_connected: false,
            consecutive_failures: 0,
            retired: false,
            issued: 0,
        }
    }
}

fn strip_scheme(url: &str) -> &str {
    url.strip_prefix("http://").unwrap_or(url).trim_end_matches('/')
}

/// One eager `GET /schema` over a throwaway connection.
fn fetch_schema(addr: &str, timeout: Duration) -> io::Result<proto::SchemaInfo> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    http::write_request(&mut &stream, "GET", "/schema", b"")?;
    let resp = http::read_response(&mut reader)?;
    if resp.status != 200 {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("schema fetch answered {}", resp.status),
        ));
    }
    let body = String::from_utf8_lossy(&resp.body).into_owned();
    proto::parse_schema_body(&body).map_err(|e| io::Error::new(ErrorKind::InvalidData, e))
}

/// One remote identity's live connection state.
#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A [`HiddenDatabase`] over the wire: one remote identity, one
/// keep-alive connection (re-established transparently after
/// failures), local validation, client-side accounting, health
/// tracking, and optional rate limiting. Minted by [`HttpConnector`].
#[derive(Debug)]
pub struct HttpDb {
    addr: String,
    identity: usize,
    schema: Schema,
    k: usize,
    timeout: Duration,
    retire_after: u32,
    limiter: Option<RateLimiter>,
    conn: Option<Conn>,
    ever_connected: bool,
    consecutive_failures: u32,
    retired: bool,
    issued: u64,
}

impl HttpDb {
    /// The identity index this connection crawls as.
    pub fn identity(&self) -> usize {
        self.identity
    }

    /// Consecutive wire failures since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Whether this identity has retired (failed permanently).
    pub fn is_retired(&self) -> bool {
        self.retired
    }

    fn open(&mut self) -> io::Result<&mut Conn> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            stream.set_nodelay(true).ok();
            if self.ever_connected && hdc_obs::enabled() {
                client_metrics().reconnects.inc();
            }
            self.ever_connected = true;
            self.conn = Some(Conn {
                reader: BufReader::new(stream.try_clone()?),
                writer: stream,
            });
        }
        Ok(self.conn.as_mut().expect("just opened"))
    }

    /// One request/response exchange. Any io damage (timeout, reset,
    /// truncation) drops the stream so the next call reconnects fresh.
    fn exchange(&mut self, path: &str, body: &str) -> Result<Response, DbError> {
        let timer = hdc_obs::enabled().then(Instant::now);
        let result = (|| {
            let conn = self.open()?;
            http::write_request(&mut &conn.writer, "POST", path, body.as_bytes())?;
            http::read_response(&mut conn.reader)
        })();
        match result {
            Ok(resp) => {
                if let Some(start) = timer {
                    let m = client_metrics();
                    m.requests.inc();
                    m.request_wall.observe_duration(start.elapsed());
                }
                Ok(resp)
            }
            Err(e) => {
                self.conn = None;
                if hdc_obs::enabled() {
                    let m = client_metrics();
                    m.wire_failures.inc();
                    if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock) {
                        m.timeouts.inc();
                    }
                }
                Err(DbError::Transient(format!(
                    "wire failure on {path}: {} ({e})",
                    kind_label(e.kind())
                )))
            }
        }
    }

    /// Books a failure: strike the health counter, retire at the
    /// threshold. Transparent pass-through for the error.
    fn strike(&mut self, e: DbError) -> DbError {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.consecutive_failures >= self.retire_after && !self.retired {
            self.retired = true;
            if hdc_obs::enabled() {
                client_metrics().retired.inc();
            }
        }
        e
    }

    fn retired_error(&self) -> DbError {
        DbError::Backend(format!(
            "identity {} retired after {} consecutive wire failures",
            self.identity, self.consecutive_failures
        ))
    }

    /// Shared post-exchange handling: map error statuses, surface
    /// malformed 200 bodies as transient transport damage.
    fn parse_success<T>(
        &mut self,
        resp: Response,
        parse: impl FnOnce(&str) -> Result<T, proto::WireError>,
    ) -> Result<T, DbError> {
        let body = String::from_utf8_lossy(&resp.body).into_owned();
        if resp.status != 200 {
            let e = proto::parse_error_body(resp.status, &body);
            return Err(e);
        }
        match parse(&body) {
            Ok(v) => Ok(v),
            Err(e) => {
                // A 200 with an unreadable body is transport damage:
                // drop the stream and let the retry policy try again.
                self.conn = None;
                Err(DbError::Transient(format!("malformed response: {e}")))
            }
        }
    }
}

fn kind_label(kind: ErrorKind) -> &'static str {
    match kind {
        ErrorKind::TimedOut | ErrorKind::WouldBlock => "timeout",
        ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted | ErrorKind::BrokenPipe => {
            "connection reset"
        }
        ErrorKind::ConnectionRefused => "connection refused",
        ErrorKind::UnexpectedEof => "connection closed mid-response",
        ErrorKind::InvalidData => "malformed response",
        _ => "io error",
    }
}

impl HiddenDatabase for HttpDb {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn k(&self) -> usize {
        self.k
    }

    fn query(&mut self, q: &Query) -> Result<QueryOutcome, DbError> {
        if self.retired {
            return Err(self.retired_error());
        }
        // Local validation: charge-nothing InvalidQuery, same as the
        // server would answer, without spending a round trip.
        q.validate(&self.schema).map_err(DbError::InvalidQuery)?;
        if let Some(limiter) = &mut self.limiter {
            limiter.acquire(1.0);
        }
        let resp = match self.exchange("/query", &proto::query_body(q)) {
            Ok(resp) => resp,
            Err(e) => return Err(self.strike(e)),
        };
        match self.parse_success(resp, proto::parse_outcome_body) {
            Ok(out) => {
                self.consecutive_failures = 0;
                self.issued += 1;
                Ok(out)
            }
            Err(e) => Err(self.strike(e)),
        }
    }

    /// All-or-nothing over the wire: one `/query_batch` round trip, all
    /// outcomes or a single error — mirroring `ServerClient`, so batch
    /// accounting reconciles identically to in-process serving.
    fn query_batch(&mut self, queries: &[Query]) -> Result<Vec<QueryOutcome>, DbError> {
        if self.retired {
            return Err(self.retired_error());
        }
        for q in queries {
            q.validate(&self.schema).map_err(DbError::InvalidQuery)?;
        }
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        if let Some(limiter) = &mut self.limiter {
            limiter.acquire(queries.len() as f64);
        }
        let resp = match self.exchange("/query_batch", &proto::batch_body(queries)) {
            Ok(resp) => resp,
            Err(e) => return Err(self.strike(e)),
        };
        match self.parse_success(resp, |body| {
            proto::parse_batch_outcome_body(body, queries.len())
        }) {
            Ok(outs) => {
                self.consecutive_failures = 0;
                self.issued += queries.len() as u64;
                Ok(outs)
            }
            Err(e) => Err(self.strike(e)),
        }
    }

    fn try_query_batch(&mut self, queries: &[Query]) -> (Vec<QueryOutcome>, Option<DbError>) {
        match self.query_batch(queries) {
            Ok(outs) => (outs, None),
            Err(e) => (Vec::new(), Some(e)),
        }
    }

    fn queries_issued(&self) -> u64 {
        self.issued
    }
}
