//! Vendored minimal JSON for the wire protocol (the container has no
//! registry access, so no serde).
//!
//! Sibling of the checkpoint parser in `hdc-core::repository`, but
//! hardened for *untrusted* input: this one accepts string escapes
//! (`\"`, `\\`, `\/`, `\n`, `\t`, `\r`, `\b`, `\f`, `\uXXXX`), enforces
//! a nesting-depth ceiling, and rejects everything else — floats,
//! unpaired surrogates, trailing garbage — with a clean [`JsonError`],
//! never a panic. The corruption suite (`protocol_fuzz`) feeds it
//! truncated and garbage bodies directly.

use std::fmt;

/// Parse failure: a position (byte offset) and a static reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the parser gave up at.
    pub at: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value. Numbers are integers only — the protocol never
/// sends floats, so a fraction or exponent is a parse error.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (i128 covers every u64/i64 the protocol uses).
    Int(i128),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (keys are not deduplicated).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Maximum nesting depth: far above anything the protocol produces,
/// far below anything that could exhaust the stack.
const MAX_DEPTH: usize = 32;

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &'static str) -> JsonError {
        JsonError {
            at: self.pos,
            reason,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, reason: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected byte")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &'static [u8], value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits {
            return Err(self.err("number without digits"));
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floats not supported by this protocol"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits and minus are ASCII");
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|_| self.err("integer overflow"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Reject surrogates outright: the protocol
                            // only emits BMP escapes for control bytes.
                            let ch = char::from_u32(u32::from(code))
                                .ok_or_else(|| self.err("escaped surrogate"))?;
                            out.push(ch);
                            continue; // hex4 already advanced
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Copy the whole run of plain bytes at once. The
                    // run ends only at ASCII delimiters (quote,
                    // backslash, control), which cannot appear inside a
                    // multi-byte scalar, so the span stays on UTF-8
                    // boundaries; the input arrived as a &str, so the
                    // bytes themselves are already valid.
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' || c < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("bad utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self
            .pos
            .checked_add(4)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let code = u16::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected object")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected : after key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }
}

/// Escapes and quotes a string for JSON output.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_escapes() {
        let original = "a\"b\\c\nd\te\u{1}f/€";
        let quoted = quote(original);
        let back = parse(&quoted).unwrap();
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn parses_protocol_shapes() {
        let v = parse(r#"{"q":["*","=3","0..9"],"n":-7,"ok":true,"x":null}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_int), Some(-7));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("x"), Some(&Json::Null));
        let arr = v.get("q").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_str(), Some("*"));
    }

    #[test]
    fn rejects_garbage_cleanly() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"",
            "{\"a\":}",
            "1.5",
            "1e9",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800\"",
            "tru",
            "nul",
            "01x",
            "{} trailing",
            "--3",
            "\u{1}",
            "99999999999999999999999999999999999999999",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_is_an_error_not_a_crash() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(parse(&deep).is_err());
    }
}
