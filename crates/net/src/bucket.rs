//! Per-identity token-bucket rate limiting.
//!
//! Real hidden databases meter queries per client identity (§1.1 of the
//! paper: "most systems have a control on how many queries can be
//! submitted by the same IP address"). The crawler side of that coin is
//! *pacing*: [`HttpDb`](crate::HttpDb) pulls one token per query (a
//! batch of `m` queries pulls `m`) so an identity never exceeds its
//! configured sustained rate, with a burst allowance for the chatty
//! phases of a crawl.
//!
//! The arithmetic core ([`TokenBucket`]) is time-parameterized — callers
//! feed it a monotonic nanosecond clock — so tests pin the schedule
//! deterministically; [`RateLimiter`] wraps it around a real
//! [`Instant`] clock and sleeps out the waits.

use std::time::{Duration, Instant};

/// Deterministic token-bucket arithmetic over a caller-supplied clock.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Tokens replenished per second.
    rate: f64,
    /// Bucket capacity (burst allowance), ≥ 1 token.
    capacity: f64,
    /// Tokens currently available.
    tokens: f64,
    /// Clock reading at the last update, in nanoseconds.
    last_nanos: u64,
}

impl TokenBucket {
    /// A bucket sustaining `rate` tokens/second with room for `burst`
    /// tokens. Both are clamped to at least a workable minimum so a
    /// zero-rate bucket cannot deadlock its caller.
    pub fn new(rate: f64, burst: f64) -> Self {
        let rate = rate.max(1e-9);
        TokenBucket {
            rate,
            capacity: burst.max(1.0),
            tokens: burst.max(1.0),
            last_nanos: 0,
        }
    }

    /// Takes `count` tokens at clock reading `now_nanos`, returning how
    /// many nanoseconds the caller must wait before proceeding (0 when
    /// the bucket covers the request immediately).
    ///
    /// The debt model lets a request larger than the remaining tokens
    /// proceed after its proportional wait instead of deadlocking:
    /// tokens go negative and the wait covers the shortfall.
    pub fn take_at(&mut self, now_nanos: u64, count: f64) -> u64 {
        let elapsed = now_nanos.saturating_sub(self.last_nanos);
        self.last_nanos = now_nanos;
        self.tokens = (self.tokens + elapsed as f64 * 1e-9 * self.rate).min(self.capacity);
        self.tokens -= count;
        if self.tokens >= 0.0 {
            0
        } else {
            (-self.tokens / self.rate * 1e9).ceil() as u64
        }
    }
}

/// A [`TokenBucket`] over the real clock: [`RateLimiter::acquire`]
/// blocks until the identity is within its rate.
#[derive(Debug)]
pub struct RateLimiter {
    bucket: TokenBucket,
    origin: Instant,
}

impl RateLimiter {
    /// A limiter sustaining `rate` queries/second with a burst of
    /// `burst` queries.
    pub fn new(rate: f64, burst: f64) -> Self {
        RateLimiter {
            bucket: TokenBucket::new(rate, burst),
            origin: Instant::now(),
        }
    }

    /// Blocks until `count` queries may be sent.
    pub fn acquire(&mut self, count: f64) {
        let now = self.origin.elapsed().as_nanos() as u64;
        let wait = self.bucket.take_at(now, count);
        if wait > 0 {
            std::thread::sleep(Duration::from_nanos(wait));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn burst_then_steady_state() {
        // 10 tokens/s, burst of 2: the first two are free, then one
        // every 100ms.
        let mut b = TokenBucket::new(10.0, 2.0);
        assert_eq!(b.take_at(0, 1.0), 0);
        assert_eq!(b.take_at(0, 1.0), 0);
        let wait = b.take_at(0, 1.0);
        assert_eq!(wait, SEC / 10);
        // After serving that wait, the next token costs another 100ms.
        let wait2 = b.take_at(wait, 1.0);
        assert_eq!(wait2, SEC / 10);
    }

    #[test]
    fn idle_time_refills_up_to_capacity() {
        let mut b = TokenBucket::new(10.0, 3.0);
        assert_eq!(b.take_at(0, 3.0), 0);
        // 10 seconds idle refills to capacity (3), not 100 tokens.
        assert_eq!(b.take_at(10 * SEC, 3.0), 0);
        assert!(b.take_at(10 * SEC, 1.0) > 0);
    }

    #[test]
    fn batch_debt_waits_proportionally() {
        let mut b = TokenBucket::new(100.0, 1.0);
        // A 16-query batch against a 1-token bucket waits for the
        // 15-token shortfall: 150ms at 100/s.
        let wait = b.take_at(0, 16.0);
        assert_eq!(wait, 15 * SEC / 100);
        // Once that wait elapses the debt is repaid exactly.
        assert_eq!(b.take_at(wait, 0.0), 0);
    }

    #[test]
    fn zero_rate_cannot_deadlock() {
        let mut b = TokenBucket::new(0.0, 0.0);
        let wait = b.take_at(0, 1.0);
        assert!(wait < u64::MAX, "clamped rate yields a finite wait");
    }

    #[test]
    fn real_clock_limiter_paces() {
        // 1000/s burst 1: 5 acquires ≈ 4ms minimum.
        let mut l = RateLimiter::new(1000.0, 1.0);
        let start = Instant::now();
        for _ in 0..5 {
            l.acquire(1.0);
        }
        assert!(start.elapsed() >= Duration::from_millis(3));
    }
}
