//! Offline wire layer for the hidden-database crawler: hand-rolled
//! HTTP/1.1 over `std::net`, loopback serving, and a health-tracked
//! client — no external dependencies, no network beyond the sockets the
//! tests open themselves.
//!
//! # What this crate adds
//!
//! Everything below `Crawl::builder()` so far ran in-process. This
//! crate puts a real socket in the middle and proves nothing changes:
//!
//! * [`serve`] / [`WireServer`] — expose a
//!   [`SharedServer`](hdc_server::SharedServer) as a thread-per-connection
//!   query endpoint ([`proto`] documents the endpoints and bodies), with
//!   per-connection identity isolation, optional per-connection budgets,
//!   graceful drain on shutdown, and a deterministic server-side fault
//!   injector ([`FaultPlan`]).
//! * [`HttpConnector`] / [`HttpDb`] — the client side: a
//!   [`Connector`](hdc_core::Connector) whose connections implement
//!   `HiddenDatabase` over the wire, mapping timeouts and resets to
//!   `DbError::Transient` (so retry, per-identity strikes, and
//!   checkpoint/resume work unchanged), pacing identities with a token
//!   bucket ([`bucket`]), and retiring identities after consecutive
//!   failures.
//!
//! # Determinism contract
//!
//! The server charges nothing for injected faults and the client
//! charges nothing for failed requests, so a retried crawl over a faulty
//! wire converges on the *bit-identical* bag, cost, and tallies of a
//! fault-free in-process crawl — `tests/wire_equiv.rs` proves it
//! differentially, and `tests/protocol_fuzz.rs` proves malformed bytes
//! on either side are clean errors, never panics or hangs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

pub mod bucket;
pub mod client;
pub mod http;
pub mod proto;
pub mod server;

pub use bucket::{RateLimiter, TokenBucket};
pub use client::{HttpConnector, HttpDb};
pub use server::{serve, FaultPlan, RouteExt, ServeOptions, ServeStats, WireServer};
