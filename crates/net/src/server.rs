//! `hdc serve`: the loopback wire front end over a [`SharedServer`].
//!
//! Thread-per-connection serving of the [`proto`]
//! endpoints. Each accepted connection mints its own
//! [`ServerClient`](hdc_server::ServerClient) (per-connection identity
//! isolation, optionally budgeted), so N wire clients get exactly the
//! semantics N in-process `shared.client()` handles would.
//!
//! # Shutdown drains
//!
//! Cancellation (the [`CancelToken`], or a `POST /shutdown`) stops the
//! *accept* loop immediately, but every connection handler finishes its
//! in-flight request and writes the complete response before closing —
//! a well-behaved client never sees an abruptly reset socket, only a
//! clean close between requests. [`serve`] runs its handlers on scoped
//! threads, so it returns only after every handler has been joined.
//!
//! # Fault injection
//!
//! [`FaultPlan`] makes robustness testable over a real socket: each
//! query request draws from a seeded splitmix64 stream (the same
//! generator as `hdc_types::FaultyDb`) and, on a fault, answers 503 —
//! after stalling for [`FaultPlan::stall`] first, when configured, so
//! client read timeouts are exercised too. Faults fire *before* the
//! query reaches the engine: nothing is charged, which is what keeps
//! retried wire crawls bit-identical to fault-free ones.
//!
//! # Telemetry
//!
//! `GET /metrics` (Prometheus text) and `GET /stats` (JSON) expose the
//! process-wide [`hdc_obs`] registry from the same thread-per-connection
//! loop as the protocol endpoints, so they stay answerable while crawls
//! are in flight. The server also records its own request counters and
//! a parse-to-flush latency histogram when the registry is enabled.

use std::io::{self, BufRead, BufReader, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hdc_core::CancelToken;
use hdc_server::SharedServer;
use hdc_types::{DbError, HiddenDatabase};

use crate::http::{self, Request, Response};
use crate::proto;

/// Deterministic server-side fault injection for the query endpoints.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that a query request is answered with a
    /// fault instead of reaching the engine.
    pub rate: f64,
    /// Seed for the per-connection fault schedule.
    pub seed: u64,
    /// When set, a faulted request stalls this long before the 503 —
    /// a stall longer than the client's read timeout exercises the
    /// timeout-as-transient path.
    pub stall: Option<Duration>,
}

/// An auxiliary endpoint handler mounted *next to* the built-in data
/// endpoints: a request no built-in route claims is offered to the
/// extension before the 404 fallthrough. This is how the `hdc-coord`
/// lease coordinator serves `POST /lease` / `POST /heartbeat` /
/// `POST /complete` / `GET /plan` from the same listener as the data
/// plane. Extensions are shared across every connection handler thread
/// (hence `Send + Sync`) and are never consulted for the built-in paths,
/// so they cannot shadow the data protocol; the server-side fault plan
/// also does not apply to them (they are control plane, not charged
/// queries).
pub trait RouteExt: Send + Sync {
    /// Handles `req`, or returns `None` to let the server 404 it.
    fn handle(&self, req: &Request) -> Option<Response>;
}

/// Serving knobs.
#[derive(Clone, Default)]
pub struct ServeOptions {
    /// Per-connection query budget (each connection gets its own quota,
    /// like [`SharedServer::client_with_budget`]). `None` = unmetered.
    pub budget: Option<u64>,
    /// Fault injection plan. `None` = always healthy.
    pub faults: Option<FaultPlan>,
    /// Log one summary line per drained connection to stderr
    /// (identity, requests answered, queries charged, faults injected,
    /// connection lifetime).
    pub verbose: bool,
    /// Extra endpoints served next to the data plane (see [`RouteExt`]).
    pub extension: Option<Arc<dyn RouteExt>>,
}

impl std::fmt::Debug for ServeOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeOptions")
            .field("budget", &self.budget)
            .field("faults", &self.faults)
            .field("verbose", &self.verbose)
            .field("extension", &self.extension.as_ref().map(|_| "RouteExt"))
            .finish()
    }
}

/// Counters reported by [`serve`] after shutdown.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered (any status).
    pub requests: u64,
    /// Faults injected by the [`FaultPlan`].
    pub faults_injected: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    faults: AtomicU64,
}

/// Per-connection tallies for the `--verbose` summary line.
#[derive(Default)]
struct ConnTally {
    requests: u64,
    faults: u64,
}

/// Handles to the wire-server metrics, resolved once (the registry
/// lock is not on the per-request path).
struct WireMetrics {
    /// `hdc_wire_server_requests_total`.
    requests: Arc<hdc_obs::Counter>,
    /// `hdc_wire_server_connections_total`.
    connections: Arc<hdc_obs::Counter>,
    /// `hdc_wire_server_faults_injected_total`.
    faults: Arc<hdc_obs::Counter>,
    /// `hdc_wire_server_request_seconds`: parse-to-flush wall time.
    request_wall: Arc<hdc_obs::Histogram>,
}

fn wire_metrics() -> &'static WireMetrics {
    static METRICS: OnceLock<WireMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = hdc_obs::registry();
        WireMetrics {
            requests: r.counter(
                "hdc_wire_server_requests_total",
                "Requests answered by the wire server (any status)",
            ),
            connections: r.counter(
                "hdc_wire_server_connections_total",
                "Connections accepted by the wire server",
            ),
            faults: r.counter(
                "hdc_wire_server_faults_injected_total",
                "Faults injected by the serve-side fault plan",
            ),
            request_wall: r.histogram(
                "hdc_wire_server_request_seconds",
                "Wall time from request parsed to response flushed",
                hdc_obs::latency_bounds(),
                hdc_obs::Unit::Nanos,
            ),
        }
    })
}

/// How often a parked handler re-checks cancellation. Does not add
/// request latency: the timed-out read wakes as soon as bytes arrive.
const POLL: Duration = Duration::from_millis(25);
/// How often the accept loop polls. Unlike [`POLL`] this sleep is
/// latency a fresh connection actually waits out (the socket sits in
/// the backlog until the loop wakes), so it stays small.
const ACCEPT_POLL: Duration = Duration::from_millis(1);
/// Read timeout once a request has started arriving.
const REQUEST_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Runs the accept loop until `cancel` trips (externally or via
/// `POST /shutdown`), then joins every connection handler — in-flight
/// requests are answered in full before their connections close — and
/// returns the tallies.
pub fn serve(
    listener: TcpListener,
    shared: SharedServer,
    opts: ServeOptions,
    cancel: &CancelToken,
) -> io::Result<ServeStats> {
    listener.set_nonblocking(true)?;
    let counters = Counters::default();
    let schema_body = proto::schema_body(shared.schema(), shared.k(), shared.n());
    let mut accept_error = None;
    let opts = &opts;
    std::thread::scope(|scope| {
        let mut next_conn = 0u64;
        while !cancel.is_cancelled() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    counters.connections.fetch_add(1, Ordering::Relaxed);
                    if hdc_obs::enabled() {
                        wire_metrics().connections.inc();
                    }
                    let conn_id = next_conn;
                    next_conn += 1;
                    let db = shared.connection_client(opts.budget);
                    let (counters, schema_body) = (&counters, schema_body.as_str());
                    scope.spawn(move || {
                        // Handler errors mean the peer vanished or spoke
                        // garbage; either way the connection is done.
                        let _ = handle_connection(
                            stream,
                            db,
                            schema_body,
                            opts,
                            conn_id,
                            counters,
                            cancel,
                        );
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    accept_error = Some(e);
                    cancel.cancel();
                    break;
                }
            }
        }
        // Scope exit joins every handler: the drain.
    });
    match accept_error {
        Some(e) => Err(e),
        None => Ok(ServeStats {
            connections: counters.connections.load(Ordering::Relaxed),
            requests: counters.requests.load(Ordering::Relaxed),
            faults_injected: counters.faults.load(Ordering::Relaxed),
        }),
    }
}

/// Seeded splitmix64 — the same stream generator as `hdc_types::FaultyDb`,
/// so wire fault schedules are reproducible run to run.
struct FaultDice {
    state: u64,
    rate: f64,
}

impl FaultDice {
    fn new(plan: &FaultPlan, conn_id: u64) -> Self {
        FaultDice {
            state: plan
                .seed
                .wrapping_add((conn_id + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            rate: plan.rate,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn fault(&mut self) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.rate
    }
}

fn handle_connection(
    stream: TcpStream,
    mut db: Box<dyn HiddenDatabase + Send>,
    schema_body: &str,
    opts: &ServeOptions,
    conn_id: u64,
    counters: &Counters,
    cancel: &CancelToken,
) -> io::Result<()> {
    let started = Instant::now();
    let mut tally = ConnTally::default();
    let result = serve_requests(
        stream,
        &mut *db,
        schema_body,
        opts,
        conn_id,
        counters,
        cancel,
        &mut tally,
    );
    if opts.verbose {
        eprintln!(
            "[conn {conn_id}] {} requests, {} queries charged, {} faults injected, {:.3}s",
            tally.requests,
            db.queries_issued(),
            tally.faults,
            started.elapsed().as_secs_f64()
        );
    }
    result
}

#[allow(clippy::too_many_arguments)] // the one seam between accept loop and request loop
fn serve_requests(
    stream: TcpStream,
    db: &mut dyn HiddenDatabase,
    schema_body: &str,
    opts: &ServeOptions,
    conn_id: u64,
    counters: &Counters,
    cancel: &CancelToken,
    tally: &mut ConnTally,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let faults = &opts.faults;
    let mut dice = faults.as_ref().map(|plan| FaultDice::new(plan, conn_id));
    let stall = faults.as_ref().and_then(|plan| plan.stall);
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer = stream;
    loop {
        // Idle poll: peek for the first byte under a short timeout so a
        // parked keep-alive connection notices cancellation promptly.
        // No byte is consumed, so nothing a slow client sends is lost.
        writer.set_read_timeout(Some(POLL))?;
        match reader.fill_buf() {
            Ok([]) => return Ok(()), // peer closed cleanly
            Ok(_) => {}              // a request has started arriving
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if cancel.is_cancelled() {
                    return Ok(()); // drained: nothing in flight
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        // A request is in flight: give the rest of it a generous window,
        // and answer it in full even if cancellation trips meanwhile.
        writer.set_read_timeout(Some(REQUEST_READ_TIMEOUT))?;
        let req = match http::read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()),
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                // Malformed request: answer 400 and hang up.
                counters.requests.fetch_add(1, Ordering::Relaxed);
                tally.requests += 1;
                let _ = http::write_response(&mut &writer, &protocol_error(&e), true);
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        counters.requests.fetch_add(1, Ordering::Relaxed);
        tally.requests += 1;
        let timer = hdc_obs::enabled().then(Instant::now);
        let mut ctx = RequestCtx {
            dice: &mut dice,
            stall,
            counters,
            tally,
        };
        let (resp, hangup) = route(
            &req,
            db,
            schema_body,
            &mut ctx,
            cancel,
            opts.extension.as_deref(),
        );
        let closing = hangup || cancel.is_cancelled();
        http::write_response(&mut &writer, &resp, closing)?;
        if let Some(start) = timer {
            let m = wire_metrics();
            m.requests.inc();
            m.request_wall.observe_duration(start.elapsed());
        }
        if closing {
            // Drain semantics: the in-flight request was answered in
            // full; close instead of accepting more work.
            return Ok(());
        }
    }
}

fn protocol_error(e: &dyn std::fmt::Display) -> Response {
    Response::json(
        400,
        format!(
            "{{\"kind\":\"protocol\",\"error\":{}}}",
            crate::json::quote(&e.to_string())
        )
        .into_bytes(),
    )
}

fn error_response(e: &DbError) -> Response {
    Response::json(e.wire_status(), proto::error_body(e).into_bytes())
}

fn ok(body: String) -> Response {
    Response::json(200, body.into_bytes())
}

/// Per-request routing state: fault dice, tallies, and counters — one
/// bundle so the request loop and [`route`] share a single seam.
struct RequestCtx<'a> {
    dice: &'a mut Option<FaultDice>,
    stall: Option<Duration>,
    counters: &'a Counters,
    tally: &'a mut ConnTally,
}

/// Routes one request. Returns the response and whether the connection
/// must close afterwards (shutdown was requested).
fn route(
    req: &Request,
    db: &mut dyn HiddenDatabase,
    schema_body: &str,
    ctx: &mut RequestCtx<'_>,
    cancel: &CancelToken,
    extension: Option<&dyn RouteExt>,
) -> (Response, bool) {
    let body = String::from_utf8_lossy(&req.body);
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/schema") => (ok(schema_body.to_string()), false),
        // The telemetry registry is process-wide: counters here cover
        // every connection of this server (plus anything else the
        // process instruments), not just the asking connection.
        ("GET", "/metrics") => (
            Response::prometheus(200, hdc_obs::registry().render_prometheus()),
            false,
        ),
        ("GET", "/stats") => (ok(hdc_obs::registry().render_json()), false),
        ("POST", "/shutdown") => {
            cancel.cancel();
            (ok("{\"ok\":true}".to_string()), true)
        }
        ("POST", "/query") => {
            if let Some(resp) = injected_fault(ctx) {
                return (resp, false);
            }
            match proto::parse_query_body(&body) {
                Ok(q) => match db.query(&q) {
                    Ok(out) => (ok(proto::outcome_body(&out)), false),
                    Err(e) => (error_response(&e), false),
                },
                Err(e) => (protocol_error(&e), false),
            }
        }
        ("POST", "/query_batch") => {
            if let Some(resp) = injected_fault(ctx) {
                return (resp, false);
            }
            match proto::parse_batch_body(&body) {
                Ok(qs) => match db.query_batch(&qs) {
                    Ok(outs) => (ok(proto::batch_outcome_body(&outs)), false),
                    Err(e) => (error_response(&e), false),
                },
                Err(e) => (protocol_error(&e), false),
            }
        }
        ("GET" | "POST", _) => {
            // Built-ins stay authoritative: only a path none of them
            // claimed reaches the extension.
            if let Some(resp) = extension.and_then(|ext| ext.handle(req)) {
                return (resp, false);
            }
            (
                Response::json(
                    404,
                    b"{\"kind\":\"protocol\",\"error\":\"no such endpoint\"}".to_vec(),
                ),
                false,
            )
        }
        _ => (
            Response::json(
                405,
                b"{\"kind\":\"protocol\",\"error\":\"method not allowed\"}".to_vec(),
            ),
            false,
        ),
    }
}

/// Rolls the fault dice for a query endpoint. A fault stalls (when
/// configured) and answers 503 *without* touching the engine — nothing
/// is charged, so a retried crawl converges on the fault-free outcome.
fn injected_fault(ctx: &mut RequestCtx<'_>) -> Option<Response> {
    let dice = ctx.dice.as_mut()?;
    if !dice.fault() {
        return None;
    }
    ctx.counters.faults.fetch_add(1, Ordering::Relaxed);
    ctx.tally.faults += 1;
    if hdc_obs::enabled() {
        wire_metrics().faults.inc();
    }
    if let Some(stall) = ctx.stall {
        std::thread::sleep(stall);
    }
    Some(error_response(&DbError::Transient(
        "injected wire fault".to_string(),
    )))
}

/// A serving thread plus its cancellation token: the test- and
/// CLI-friendly handle around [`serve`].
#[derive(Debug)]
pub struct WireServer {
    addr: SocketAddr,
    cancel: Arc<CancelToken>,
    thread: Option<JoinHandle<io::Result<ServeStats>>>,
}

impl WireServer {
    /// Binds `addr` (use port 0 for an ephemeral port), spawns the
    /// accept loop, and returns once the socket is listening.
    pub fn start(addr: &str, shared: SharedServer, opts: ServeOptions) -> io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let cancel = Arc::new(CancelToken::new());
        let token = Arc::clone(&cancel);
        let thread = std::thread::spawn(move || serve(listener, shared, opts, &token));
        Ok(WireServer {
            addr,
            cancel,
            thread: Some(thread),
        })
    }

    /// The bound address (with the real port when started on port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's cancellation token (trip it to begin a drain).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Trips cancellation and joins the accept loop: returns after every
    /// in-flight request has been answered and every connection closed.
    pub fn shutdown(mut self) -> io::Result<ServeStats> {
        self.cancel.cancel();
        match self.thread.take() {
            Some(t) => t
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("serve thread panicked"))),
            None => Ok(ServeStats::default()),
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.cancel.cancel();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}
