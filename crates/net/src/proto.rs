//! The `hdc-wire` application protocol: JSON bodies over HTTP/1.1.
//!
//! # Endpoints
//!
//! | method · path | request body | success body |
//! |---------------|--------------|--------------|
//! | `GET /schema` | — | `{"format":"hdc-wire","version":1,"k":K,"n":N,"schema":[…]}` |
//! | `POST /query` | `{"q":[pred,…]}` | `{"overflow":bool,"tuples":[[val,…],…]}` |
//! | `POST /query_batch` | `{"qs":[[pred,…],…]}` | `{"outcomes":[outcome,…]}` |
//! | `POST /shutdown` | — | `{"ok":true}` (then the server drains and exits) |
//!
//! # Tokens
//!
//! Values use the checkpoint format's compact tokens: `"c5"` is
//! categorical value 5, `"i-7"` is numeric value −7. Predicates are
//! `"*"` (any), `"=5"` (categorical equality), and `"lo..hi"`
//! (inclusive numeric range). Schema attributes are
//! `{"name":…,"cat":size}` or `{"name":…,"min":…,"max":…}`.
//!
//! # Errors
//!
//! A failed query returns the [`DbError::wire_status`] code with body
//! `{"kind":…,"error":…}` (plus `"issued"`/`"limit"` for budget
//! exhaustion, so [`DbError::BudgetExhausted`] round-trips
//! field-exactly). [`parse_error_body`] restores the taxonomy on the
//! client; anything unparseable degrades to the status class
//! ([`DbError::status_is_transient`]).

use hdc_types::{AttrKind, Attribute, DbError, Predicate, Query, QueryOutcome, Schema, Tuple, Value};

use crate::json::{self, Json};

/// Wire format identifier, checked on both ends.
pub const FORMAT: &str = "hdc-wire";
/// Wire format version, checked on both ends.
pub const VERSION: i64 = 1;

/// A malformed wire payload (either direction). The server answers 400;
/// the client surfaces it as [`DbError::Transient`] only when retrying
/// could help (it never does for a malformed *request*, so the client
/// treats protocol violations from the server as transient transport
/// damage instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire protocol error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl From<json::JsonError> for WireError {
    fn from(e: json::JsonError) -> Self {
        WireError(e.to_string())
    }
}

fn wire_err(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

// ---------------------------------------------------------------- values

fn parse_value(tok: &str) -> Result<Value, WireError> {
    let rest = tok.get(1..).unwrap_or("");
    match tok.as_bytes().first() {
        Some(b'c') => rest
            .parse::<u32>()
            .map(Value::Cat)
            .map_err(|_| wire_err(format!("bad categorical token {tok:?}"))),
        Some(b'i') => rest
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| wire_err(format!("bad numeric token {tok:?}"))),
        _ => Err(wire_err(format!("bad value token {tok:?}"))),
    }
}

// ------------------------------------------------------------ predicates

fn predicate_token(p: &Predicate) -> String {
    match p {
        Predicate::Any => "*".to_string(),
        Predicate::Eq(v) => format!("={v}"),
        Predicate::Range { lo, hi } => format!("{lo}..{hi}"),
    }
}

fn parse_predicate(tok: &str) -> Result<Predicate, WireError> {
    if tok == "*" {
        return Ok(Predicate::Any);
    }
    if let Some(rest) = tok.strip_prefix('=') {
        return rest
            .parse::<u32>()
            .map(Predicate::Eq)
            .map_err(|_| wire_err(format!("bad equality predicate {tok:?}")));
    }
    if let Some((lo, hi)) = tok.split_once("..") {
        let lo = lo
            .parse::<i64>()
            .map_err(|_| wire_err(format!("bad range lower bound {tok:?}")))?;
        let hi = hi
            .parse::<i64>()
            .map_err(|_| wire_err(format!("bad range upper bound {tok:?}")))?;
        return Ok(Predicate::Range { lo, hi });
    }
    Err(wire_err(format!("bad predicate token {tok:?}")))
}

// --------------------------------------------------------------- queries

/// Serializes a query as the `/query` request body.
pub fn query_body(q: &Query) -> String {
    format!("{{\"q\":{}}}", preds_json(q))
}

fn preds_json(q: &Query) -> String {
    let toks: Vec<String> = q
        .preds()
        .iter()
        .map(|p| json::quote(&predicate_token(p)))
        .collect();
    format!("[{}]", toks.join(","))
}

/// Serializes a batch as the `/query_batch` request body.
pub fn batch_body(qs: &[Query]) -> String {
    let items: Vec<String> = qs.iter().map(preds_json).collect();
    format!("{{\"qs\":[{}]}}", items.join(","))
}

fn query_from_json(v: &Json) -> Result<Query, WireError> {
    let preds = v
        .as_arr()
        .ok_or_else(|| wire_err("query must be an array of predicate tokens"))?
        .iter()
        .map(|t| {
            t.as_str()
                .ok_or_else(|| wire_err("predicate token must be a string"))
                .and_then(parse_predicate)
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Query::new(preds))
}

/// Parses a `/query` request body.
pub fn parse_query_body(body: &str) -> Result<Query, WireError> {
    let v = json::parse(body)?;
    query_from_json(v.get("q").ok_or_else(|| wire_err("missing field q"))?)
}

/// Parses a `/query_batch` request body.
pub fn parse_batch_body(body: &str) -> Result<Vec<Query>, WireError> {
    let v = json::parse(body)?;
    v.get("qs")
        .and_then(Json::as_arr)
        .ok_or_else(|| wire_err("missing array field qs"))?
        .iter()
        .map(query_from_json)
        .collect()
}

// -------------------------------------------------------------- outcomes

/// Appends one value token (`"c5"` / `"i-7"`) to `out`. Tokens contain
/// only `[ci0-9-]`, so no JSON escaping is ever needed.
fn push_value_token(out: &mut String, v: Value) {
    use std::fmt::Write as _;
    match v {
        Value::Cat(c) => {
            let _ = write!(out, "\"c{c}\"");
        }
        Value::Int(i) => {
            let _ = write!(out, "\"i{i}\"");
        }
    }
}

/// Appends a serialized outcome to `out` in canonical form (`overflow`
/// first, no whitespace) — the form [`outcome_fast`] parses without
/// building a tree. Outcome bodies are the hot path of the wire (every
/// batch response carries up to `batch × k` tuples), so both directions
/// avoid per-token allocation.
fn push_outcome_json(out: &mut String, o: &QueryOutcome) {
    out.push_str("{\"overflow\":");
    out.push_str(if o.overflow { "true" } else { "false" });
    out.push_str(",\"tuples\":[");
    for (i, t) in o.tuples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, v) in t.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_value_token(out, v);
        }
        out.push(']');
    }
    out.push_str("]}");
}

fn outcome_capacity(outs: &[&QueryOutcome]) -> usize {
    outs.iter()
        .map(|o| 32 + o.tuples.iter().map(|t| 4 + t.iter().count() * 16).sum::<usize>())
        .sum()
}

/// Serializes a `/query` success response body.
pub fn outcome_body(out: &QueryOutcome) -> String {
    let mut s = String::with_capacity(outcome_capacity(&[out]));
    push_outcome_json(&mut s, out);
    s
}

/// Serializes a `/query_batch` success response body.
pub fn batch_outcome_body(outs: &[QueryOutcome]) -> String {
    let mut s = String::with_capacity(16 + outcome_capacity(&outs.iter().collect::<Vec<_>>()));
    s.push_str("{\"outcomes\":[");
    for (i, o) in outs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_outcome_json(&mut s, o);
    }
    s.push_str("]}");
    s
}

// A strict cursor over the canonical serialization above. Any deviation
// (whitespace, reordered fields, overlong numbers) returns `None` and
// the caller falls back to the generic tree parser, so tolerance is
// unchanged — canonical bodies just skip the per-token allocations.
struct Cur<'a> {
    b: &'a [u8],
    p: usize,
}

impl<'a> Cur<'a> {
    fn new(s: &'a str) -> Self {
        Cur { b: s.as_bytes(), p: 0 }
    }

    fn eat(&mut self, lit: &[u8]) -> bool {
        if self.b[self.p..].starts_with(lit) {
            self.p += lit.len();
            true
        } else {
            false
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.p).copied()
    }

    /// A decimal integer; bails (to the fallback) on overflow.
    fn int(&mut self) -> Option<i64> {
        let neg = self.peek() == Some(b'-');
        if neg {
            self.p += 1;
        }
        let start = self.p;
        let mut val: i64 = 0;
        while let Some(c @ b'0'..=b'9') = self.peek() {
            val = val.checked_mul(10)?.checked_add(i64::from(c - b'0'))?;
            self.p += 1;
        }
        if self.p == start {
            return None;
        }
        Some(if neg { -val } else { val })
    }
}

fn value_fast(cur: &mut Cur) -> Option<Value> {
    if !cur.eat(b"\"") {
        return None;
    }
    let v = match cur.peek()? {
        b'c' => {
            cur.p += 1;
            let d = cur.int()?;
            Value::Cat(u32::try_from(d).ok()?)
        }
        b'i' => {
            cur.p += 1;
            Value::Int(cur.int()?)
        }
        _ => return None,
    };
    if !cur.eat(b"\"") {
        return None;
    }
    Some(v)
}

fn outcome_fast(cur: &mut Cur) -> Option<QueryOutcome> {
    if !cur.eat(b"{\"overflow\":") {
        return None;
    }
    let overflow = if cur.eat(b"true") {
        true
    } else if cur.eat(b"false") {
        false
    } else {
        return None;
    };
    if !cur.eat(b",\"tuples\":[") {
        return None;
    }
    let mut tuples = Vec::new();
    if !cur.eat(b"]") {
        loop {
            if !cur.eat(b"[") {
                return None;
            }
            let mut vals = Vec::new();
            if !cur.eat(b"]") {
                loop {
                    vals.push(value_fast(cur)?);
                    if cur.eat(b",") {
                        continue;
                    }
                    if cur.eat(b"]") {
                        break;
                    }
                    return None;
                }
            }
            tuples.push(Tuple::new(vals));
            if cur.eat(b",") {
                continue;
            }
            if cur.eat(b"]") {
                break;
            }
            return None;
        }
    }
    if !cur.eat(b"}") {
        return None;
    }
    Some(QueryOutcome { tuples, overflow })
}

fn outcome_from_json(v: &Json) -> Result<QueryOutcome, WireError> {
    let overflow = v
        .get("overflow")
        .and_then(Json::as_bool)
        .ok_or_else(|| wire_err("missing bool field overflow"))?;
    let tuples = v
        .get("tuples")
        .and_then(Json::as_arr)
        .ok_or_else(|| wire_err("missing array field tuples"))?
        .iter()
        .map(|row| {
            let vals = row
                .as_arr()
                .ok_or_else(|| wire_err("tuple must be an array of value tokens"))?
                .iter()
                .map(|t| {
                    t.as_str()
                        .ok_or_else(|| wire_err("value token must be a string"))
                        .and_then(parse_value)
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Tuple::new(vals))
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    Ok(QueryOutcome { tuples, overflow })
}

/// Parses a `/query` success response body. Canonical bodies (as
/// [`outcome_body`] emits them) take the allocation-free fast path;
/// anything else falls back to the generic JSON parser, so tolerance
/// is identical.
pub fn parse_outcome_body(body: &str) -> Result<QueryOutcome, WireError> {
    let mut cur = Cur::new(body);
    if let Some(out) = outcome_fast(&mut cur) {
        if cur.p == cur.b.len() {
            return Ok(out);
        }
    }
    outcome_from_json(&json::parse(body)?)
}

fn batch_outcome_fast(body: &str) -> Option<Vec<QueryOutcome>> {
    let mut cur = Cur::new(body);
    if !cur.eat(b"{\"outcomes\":[") {
        return None;
    }
    let mut outs = Vec::new();
    if !cur.eat(b"]") {
        loop {
            outs.push(outcome_fast(&mut cur)?);
            if cur.eat(b",") {
                continue;
            }
            if cur.eat(b"]") {
                break;
            }
            return None;
        }
    }
    if !cur.eat(b"}") || cur.p != cur.b.len() {
        return None;
    }
    Some(outs)
}

/// Parses a `/query_batch` success response body, checking the server
/// answered exactly `expected` outcomes. Canonical bodies take the
/// same fast path as [`parse_outcome_body`].
pub fn parse_batch_outcome_body(
    body: &str,
    expected: usize,
) -> Result<Vec<QueryOutcome>, WireError> {
    if let Some(outs) = batch_outcome_fast(body) {
        if outs.len() != expected {
            return Err(wire_err(format!(
                "batch answered {} outcomes for {} queries",
                outs.len(),
                expected
            )));
        }
        return Ok(outs);
    }
    let v = json::parse(body)?;
    let outs = v
        .get("outcomes")
        .and_then(Json::as_arr)
        .ok_or_else(|| wire_err("missing array field outcomes"))?
        .iter()
        .map(outcome_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    if outs.len() != expected {
        return Err(wire_err(format!(
            "batch answered {} outcomes for {} queries",
            outs.len(),
            expected
        )));
    }
    Ok(outs)
}

// ---------------------------------------------------------------- schema

/// Serializes the `/schema` response body.
pub fn schema_body(schema: &Schema, k: usize, n: usize) -> String {
    let attrs: Vec<String> = schema
        .attrs()
        .iter()
        .map(|a| match a.kind() {
            AttrKind::Categorical { size } => {
                format!("{{\"name\":{},\"cat\":{}}}", json::quote(a.name()), size)
            }
            AttrKind::Numeric { min, max } => format!(
                "{{\"name\":{},\"min\":{},\"max\":{}}}",
                json::quote(a.name()),
                min,
                max
            ),
        })
        .collect();
    format!(
        "{{\"format\":{},\"version\":{},\"k\":{},\"n\":{},\"schema\":[{}]}}",
        json::quote(FORMAT),
        VERSION,
        k,
        n,
        attrs.join(",")
    )
}

/// The `/schema` response, parsed: the remote database's shape.
#[derive(Debug, Clone)]
pub struct SchemaInfo {
    /// The attribute schema.
    pub schema: Schema,
    /// The server's top-`k` result limit.
    pub k: usize,
    /// Number of tuples on the server (informational).
    pub n: usize,
}

fn int_field(v: &Json, key: &'static str) -> Result<i128, WireError> {
    v.get(key)
        .and_then(Json::as_int)
        .ok_or_else(|| wire_err(format!("missing integer field {key}")))
}

/// Parses the `/schema` response body, checking format and version.
pub fn parse_schema_body(body: &str) -> Result<SchemaInfo, WireError> {
    let v = json::parse(body)?;
    if v.get("format").and_then(Json::as_str) != Some(FORMAT) {
        return Err(wire_err("not an hdc-wire schema document"));
    }
    if int_field(&v, "version")? != i128::from(VERSION) {
        return Err(wire_err("unsupported hdc-wire version"));
    }
    let k = usize::try_from(int_field(&v, "k")?).map_err(|_| wire_err("bad k"))?;
    let n = usize::try_from(int_field(&v, "n")?).map_err(|_| wire_err("bad n"))?;
    let attrs = v
        .get("schema")
        .and_then(Json::as_arr)
        .ok_or_else(|| wire_err("missing array field schema"))?
        .iter()
        .map(|a| {
            let name = a
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| wire_err("attribute without a name"))?;
            let kind = if let Some(size) = a.get("cat").and_then(Json::as_int) {
                AttrKind::Categorical {
                    size: u32::try_from(size).map_err(|_| wire_err("bad categorical size"))?,
                }
            } else {
                AttrKind::Numeric {
                    min: i64::try_from(int_field(a, "min")?).map_err(|_| wire_err("bad min"))?,
                    max: i64::try_from(int_field(a, "max")?).map_err(|_| wire_err("bad max"))?,
                }
            };
            Ok(Attribute::new(name, kind))
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    let schema = Schema::new(attrs).map_err(|e| wire_err(format!("invalid schema: {e}")))?;
    Ok(SchemaInfo { schema, k, n })
}

// ---------------------------------------------------------------- errors

/// Serializes a [`DbError`] as an error response body (paired with
/// [`DbError::wire_status`] on the status line).
pub fn error_body(e: &DbError) -> String {
    match e {
        DbError::InvalidQuery(se) => format!(
            "{{\"kind\":\"invalid\",\"error\":{}}}",
            json::quote(&se.to_string())
        ),
        DbError::BudgetExhausted { issued, limit } => format!(
            "{{\"kind\":\"budget\",\"error\":\"query budget exhausted\",\"issued\":{issued},\"limit\":{limit}}}"
        ),
        DbError::Backend(msg) => {
            format!("{{\"kind\":\"backend\",\"error\":{}}}", json::quote(msg))
        }
        DbError::Transient(msg) => {
            format!("{{\"kind\":\"transient\",\"error\":{}}}", json::quote(msg))
        }
    }
}

/// Restores a [`DbError`] from an error response. Malformed bodies
/// degrade gracefully to the status class: 5xx → transient, anything
/// else → permanent backend rejection.
///
/// Note the one intentional asymmetry: an `"invalid"` body maps to
/// [`DbError::Backend`], not [`DbError::InvalidQuery`], because
/// [`SchemaError`](hdc_types::SchemaError)'s structured fields are not
/// carried over the wire — and the client validates queries locally
/// against the fetched schema before sending, so a well-behaved client
/// never receives one.
pub fn parse_error_body(status: u16, body: &str) -> DbError {
    if let Ok(v) = json::parse(body) {
        let msg = v
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unspecified server error")
            .to_string();
        match v.get("kind").and_then(Json::as_str) {
            Some("budget") => {
                if let (Some(issued), Some(limit)) = (
                    v.get("issued").and_then(Json::as_int),
                    v.get("limit").and_then(Json::as_int),
                ) {
                    if let (Ok(issued), Ok(limit)) = (u64::try_from(issued), u64::try_from(limit))
                    {
                        return DbError::BudgetExhausted { issued, limit };
                    }
                }
                return DbError::Backend(msg);
            }
            Some("transient") => return DbError::Transient(msg),
            Some("backend") | Some("invalid") => return DbError::Backend(msg),
            _ => {}
        }
    }
    if DbError::status_is_transient(status) {
        DbError::Transient(format!("server answered {status}"))
    } else {
        DbError::Backend(format!("server answered {status}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_types::SchemaError;

    fn mixed_schema() -> Schema {
        Schema::builder()
            .categorical("city \"quoted\"", 7)
            .numeric("price", -50, 950)
            .build()
            .unwrap()
    }

    #[test]
    fn query_round_trip() {
        let q = Query::new(vec![
            Predicate::Eq(3),
            Predicate::Range { lo: -5, hi: 42 },
        ]);
        assert_eq!(parse_query_body(&query_body(&q)).unwrap(), q);
        let qs = vec![q.clone(), Query::any(2)];
        assert_eq!(parse_batch_body(&batch_body(&qs)).unwrap(), qs);
    }

    #[test]
    fn outcome_round_trip() {
        let out = QueryOutcome {
            overflow: true,
            tuples: vec![
                Tuple::new(vec![Value::Cat(2), Value::Int(-9)]),
                Tuple::new(vec![Value::Cat(0), Value::Int(7)]),
            ],
        };
        assert_eq!(parse_outcome_body(&outcome_body(&out)).unwrap(), out);
        let outs = vec![out.clone(), QueryOutcome::resolved(Vec::new())];
        assert_eq!(
            parse_batch_outcome_body(&batch_outcome_body(&outs), 2).unwrap(),
            outs
        );
        assert!(parse_batch_outcome_body(&batch_outcome_body(&outs), 3).is_err());
    }

    #[test]
    fn schema_round_trip_with_escaped_names() {
        let schema = mixed_schema();
        let info = parse_schema_body(&schema_body(&schema, 12, 345)).unwrap();
        assert_eq!(info.schema, schema);
        assert_eq!(info.k, 12);
        assert_eq!(info.n, 345);
    }

    #[test]
    fn errors_round_trip_the_taxonomy() {
        let cases = [
            DbError::BudgetExhausted {
                issued: 41,
                limit: 40,
            },
            DbError::Backend("banned \"hard\"".into()),
            DbError::Transient("flap\n".into()),
        ];
        for e in cases {
            let back = parse_error_body(e.wire_status(), &error_body(&e));
            assert_eq!(back, e, "round trip of {e:?}");
        }
        // Invalid degrades to a permanent Backend (documented asymmetry).
        let invalid = DbError::InvalidQuery(SchemaError::Empty);
        let back = parse_error_body(invalid.wire_status(), &error_body(&invalid));
        assert!(matches!(back, DbError::Backend(_)));
        assert!(!back.is_transient());
    }

    #[test]
    fn malformed_error_bodies_degrade_to_the_status_class() {
        assert!(parse_error_body(503, "garbage").is_transient());
        assert!(!parse_error_body(403, "garbage").is_transient());
        assert!(parse_error_body(500, "{}").is_transient());
    }

    #[test]
    fn malformed_payloads_are_clean_errors() {
        for bad in [
            "",
            "{",
            "{\"q\":5}",
            "{\"q\":[\"~\"]}",
            "{\"q\":[\"=x\"]}",
            "{\"q\":[\"1..\"]}",
            "{\"qs\":{}}",
        ] {
            assert!(parse_query_body(bad).is_err(), "query body {bad:?}");
            assert!(parse_batch_body(bad).is_err(), "batch body {bad:?}");
        }
        for bad in ["", "{\"overflow\":1,\"tuples\":[]}", "{\"tuples\":[]}"] {
            assert!(parse_outcome_body(bad).is_err(), "outcome body {bad:?}");
        }
        for bad in ["", "{}", "{\"format\":\"hdc-wire\",\"version\":99}"] {
            assert!(parse_schema_body(bad).is_err(), "schema body {bad:?}");
        }
    }
}
