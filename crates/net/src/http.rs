//! Minimal HTTP/1.1 framing over blocking streams — just enough for the
//! loopback protocol: request line + headers + `Content-Length` body,
//! keep-alive by default, no chunked encoding, hard limits everywhere.
//!
//! Both directions parse defensively (the corruption suite drives raw
//! sockets against them): an over-long line, too many headers, a
//! non-numeric or oversized `Content-Length`, or a truncated body is a
//! clean [`std::io::Error`] with [`ErrorKind::InvalidData`] — never a
//! panic, never an unbounded read.

use std::io::{self, BufRead, ErrorKind, Write};

/// Longest accepted request/status/header line, in bytes.
pub const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per message.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted body, in bytes (a crawl batch response with
/// `MAX_BATCH × k` tuples fits with two orders of magnitude to spare).
pub const MAX_BODY: usize = 8 * 1024 * 1024;

/// A parsed request head + body.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request path (`/query`, …), as sent.
    pub path: String,
    /// Raw body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// A response to send or a parsed response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Raw body.
    pub body: Vec<u8>,
    /// `Content-Type` written with the response. Parsed responses
    /// default to JSON (the protocol's native framing); the telemetry
    /// endpoints answer Prometheus plain text instead.
    pub content_type: &'static str,
}

/// The protocol's native body type.
pub const CONTENT_TYPE_JSON: &str = "application/json";
/// Prometheus text exposition (the `GET /metrics` answer).
pub const CONTENT_TYPE_PROMETHEUS: &str = "text/plain; version=0.0.4; charset=utf-8";

impl Response {
    /// A JSON response (every protocol endpoint).
    pub fn json(status: u16, body: Vec<u8>) -> Self {
        Response {
            status,
            body,
            content_type: CONTENT_TYPE_JSON,
        }
    }

    /// A Prometheus text response (`GET /metrics`).
    pub fn prometheus(status: u16, body: String) -> Self {
        Response {
            status,
            body: body.into_bytes(),
            content_type: CONTENT_TYPE_PROMETHEUS,
        }
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, msg.into())
}

/// Reads one CRLF- (or LF-) terminated line, bounded by [`MAX_LINE`].
/// `Ok(None)` means clean EOF before any byte.
fn read_line<R: BufRead>(r: &mut R) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(invalid("truncated line (eof mid-line)"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let s = String::from_utf8(line)
                        .map_err(|_| invalid("non-utf8 header line"))?;
                    return Ok(Some(s));
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(invalid("header line too long"));
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Parses `Content-Length` out of the header block, reading at most
/// [`MAX_HEADERS`] lines. Rejects chunked transfer encoding.
fn read_headers<R: BufRead>(r: &mut R) -> io::Result<usize> {
    let mut content_length = 0usize;
    for _ in 0..MAX_HEADERS {
        let line = read_line(r)?.ok_or_else(|| invalid("eof in headers"))?;
        if line.is_empty() {
            return Ok(content_length);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(invalid("malformed header line"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            let len: usize = value
                .parse()
                .map_err(|_| invalid("non-numeric content-length"))?;
            if len > MAX_BODY {
                return Err(invalid("body too large"));
            }
            content_length = len;
        } else if name == "transfer-encoding" {
            return Err(invalid("chunked transfer encoding not supported"));
        }
    }
    Err(invalid("too many headers"))
}

fn read_body<R: BufRead>(r: &mut R, len: usize) -> io::Result<Vec<u8>> {
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)
        .map_err(|e| match e.kind() {
            ErrorKind::UnexpectedEof => invalid("truncated body"),
            _ => e,
        })?;
    Ok(body)
}

/// Reads one request. `Ok(None)` on clean EOF before any byte (the
/// peer closed an idle keep-alive connection).
pub fn read_request<R: BufRead>(r: &mut R) -> io::Result<Option<Request>> {
    let Some(line) = read_line(r)? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => return Err(invalid("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("unsupported protocol version"));
    }
    let content_length = read_headers(r)?;
    let body = read_body(r, content_length)?;
    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
    }))
}

/// Reads one response (status line + headers + body).
pub fn read_response<R: BufRead>(r: &mut R) -> io::Result<Response> {
    let line = read_line(r)?.ok_or_else(|| invalid("connection closed before response"))?;
    let mut parts = line.split_whitespace();
    let (version, status) = match (parts.next(), parts.next()) {
        (Some(v), Some(s)) => (v, s),
        _ => return Err(invalid("malformed status line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("unsupported protocol version"));
    }
    let status: u16 = status
        .parse()
        .map_err(|_| invalid("non-numeric status code"))?;
    let content_length = read_headers(r)?;
    let body = read_body(r, content_length)?;
    Ok(Response::json(status, body))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one request (always with a `Content-Length`, keep-alive).
pub fn write_request<W: Write>(w: &mut W, method: &str, path: &str, body: &[u8]) -> io::Result<()> {
    write!(
        w,
        "{method} {path} HTTP/1.1\r\nContent-Length: {}\r\nContent-Type: application/json\r\n\r\n",
        body.len()
    )?;
    w.write_all(body)?;
    w.flush()
}

/// Writes one response; `close` adds `Connection: close`.
pub fn write_response<W: Write>(w: &mut W, resp: &Response, close: bool) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nContent-Type: {}\r\n{}\r\n",
        resp.status,
        reason(resp.status),
        resp.body.len(),
        resp.content_type,
        if close { "Connection: close\r\n" } else { "" }
    )?;
    w.write_all(&resp.body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn roundtrip_request(method: &str, path: &str, body: &[u8]) -> Request {
        let mut wire = Vec::new();
        write_request(&mut wire, method, path, body).unwrap();
        read_request(&mut BufReader::new(&wire[..]))
            .unwrap()
            .unwrap()
    }

    #[test]
    fn request_round_trip() {
        let req = roundtrip_request("POST", "/query", br#"{"q":["*"]}"#);
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.body, br#"{"q":["*"]}"#);
        let empty = roundtrip_request("GET", "/schema", b"");
        assert!(empty.body.is_empty());
    }

    #[test]
    fn response_round_trip() {
        let mut wire = Vec::new();
        write_response(&mut wire, &Response::json(503, b"{}".to_vec()), true).unwrap();
        let resp = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.body, b"{}");
    }

    #[test]
    fn idle_eof_is_none_truncation_is_error() {
        assert!(read_request(&mut BufReader::new(&b""[..]))
            .unwrap()
            .is_none());
        for bad in [
            &b"POST /query"[..],                                  // eof mid-line
            &b"POST /query HTTP/1.1\r\n"[..],                     // eof in headers
            &b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab"[..], // truncated body
        ] {
            assert!(read_request(&mut BufReader::new(bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn limits_are_enforced() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE + 1));
        assert!(read_request(&mut BufReader::new(long_line.as_bytes())).is_err());

        let mut many_headers = String::from("GET / HTTP/1.1\r\n");
        for i in 0..MAX_HEADERS + 1 {
            many_headers.push_str(&format!("X-H{i}: v\r\n"));
        }
        many_headers.push_str("\r\n");
        assert!(read_request(&mut BufReader::new(many_headers.as_bytes())).is_err());

        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(read_request(&mut BufReader::new(huge.as_bytes())).is_err());

        let nan = "POST / HTTP/1.1\r\nContent-Length: seven\r\n\r\n";
        assert!(read_request(&mut BufReader::new(nan.as_bytes())).is_err());

        let chunked = "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert!(read_request(&mut BufReader::new(chunked.as_bytes())).is_err());
    }

    #[test]
    fn garbage_lines_are_clean_errors() {
        for bad in [
            &b"\xff\xfe\xfd\r\n\r\n"[..],
            &b"ONEWORD\r\n\r\n"[..],
            &b"GET / SPDY/9\r\n\r\n"[..],
            &b"GET / HTTP/1.1 extra\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"[..],
        ] {
            assert!(read_request(&mut BufReader::new(bad)).is_err(), "{bad:?}");
        }
    }
}
