//! Fuzz-style corruption suite for the wire protocol, in the style of
//! `crates/core/tests/repository_fuzz.rs`: both endpoints face a peer
//! that may be broken, malicious, or dying mid-write.
//!
//! The contract, both directions:
//!
//! * **Server**: any byte stream that is not a well-formed request gets
//!   a clean `400` (or a clean close) — never a panic, never a hang
//!   past the request timeout — and the *same server* keeps serving
//!   well-formed requests afterwards.
//! * **Client**: any response that is not a well-formed frame (or is a
//!   well-formed `200` carrying garbage JSON) surfaces as a clean
//!   [`DbError::Transient`], the connection is dropped for reconnect,
//!   and the health counter ticks — never a panic, never a hang past
//!   the read timeout.
//!
//! Corruption is generated two ways: the named cases from the issue
//! (truncated frames, oversized headers, garbage bodies, half-written
//! responses, mid-response disconnects) and proptest-random byte blobs.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use proptest::prelude::*;

use hdc_net::http;
use hdc_net::proto;
use hdc_net::{HttpConnector, ServeOptions, WireServer};
use hdc_server::{ServerConfig, SharedServer};
use hdc_types::{HiddenDatabase, Query, Schema, Tuple, Value};

fn fixture() -> SharedServer {
    let schema = Schema::builder()
        .categorical("color", 4)
        .numeric("price", 0, 1_000)
        .build()
        .unwrap();
    let tuples: Vec<Tuple> = (0..200)
        .map(|i| Tuple::new(vec![Value::Cat(i % 4), Value::Int((i as i64 * 37) % 1_000)]))
        .collect();
    SharedServer::new(schema, tuples, ServerConfig { k: 32, seed: 7 }).unwrap()
}

// ---------------------------------------------------------------------
// Server under attack: raw sockets feed it garbage.
// ---------------------------------------------------------------------

/// Writes `payload` raw, half-closes, and drains whatever the server
/// answers (bounded by a read timeout so a buggy server cannot hang the
/// suite). Returns the raw response bytes (empty = clean close).
fn poke(addr: SocketAddr, payload: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // A dying client may fail mid-write; ignore errors on our side.
    let _ = stream.write_all(payload);
    let _ = stream.shutdown(Shutdown::Write);
    let mut resp = Vec::new();
    let _ = stream.read_to_end(&mut resp);
    resp
}

fn assert_schema_still_served(addr: SocketAddr) {
    let conn = HttpConnector::new(&addr.to_string())
        .expect("server must keep serving well-formed requests after garbage");
    assert!(conn.info().n > 0);
}

#[test]
fn server_answers_named_corruptions_with_clean_400s_and_keeps_serving() {
    let server = WireServer::start("127.0.0.1:0", fixture(), ServeOptions::default()).unwrap();
    let addr = server.addr();

    let oversized_header = format!(
        "POST /query HTTP/1.1\r\nX-Junk: {}\r\n\r\n",
        "a".repeat(http::MAX_LINE + 10)
    );
    let named: &[(&str, Vec<u8>)] = &[
        ("truncated request line", b"POST /que".to_vec()),
        ("bare garbage", b"\xff\xfe\xfd\x00\x01garbage\r\n\r\n".to_vec()),
        ("oversized header line", oversized_header.into_bytes()),
        (
            "non-numeric content-length",
            b"POST /query HTTP/1.1\r\nContent-Length: seven\r\n\r\n".to_vec(),
        ),
        (
            "oversized content-length",
            format!(
                "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                http::MAX_BODY + 1
            )
            .into_bytes(),
        ),
        (
            "chunked transfer encoding",
            b"POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n".to_vec(),
        ),
        (
            "half-written request (body shorter than content-length)",
            b"POST /query HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"q\":[".to_vec(),
        ),
        (
            "garbage body on a valid frame",
            b"POST /query HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot json!".to_vec(),
        ),
        ("mid-request disconnect", b"POST /query HTTP/1.1\r\nConte".to_vec()),
    ];

    for (label, payload) in named {
        let resp = poke(addr, payload);
        // Every named case must draw a response (the server saw a broken
        // or un-servable frame and said so), and that response must be a
        // well-formed 400 — except the valid-frame/garbage-body case,
        // which is a 400 from the JSON layer instead of the HTTP layer.
        assert!(
            !resp.is_empty(),
            "{label}: server closed without answering"
        );
        let parsed = http::read_response(&mut std::io::BufReader::new(&resp[..]))
            .unwrap_or_else(|e| panic!("{label}: malformed server response: {e}"));
        assert_eq!(parsed.status, 400, "{label}: expected a clean 400");
        let body = String::from_utf8_lossy(&parsed.body);
        assert!(
            body.contains("\"kind\""),
            "{label}: error body must carry the protocol error shape, got {body}"
        );
    }

    assert_schema_still_served(addr);
    server.shutdown().unwrap();
}

#[test]
fn server_survives_idle_open_and_instant_disconnects() {
    let server = WireServer::start("127.0.0.1:0", fixture(), ServeOptions::default()).unwrap();
    let addr = server.addr();

    // Connect-and-vanish, repeatedly.
    for _ in 0..8 {
        drop(TcpStream::connect(addr).unwrap());
    }
    // Connect, write nothing, half-close (clean EOF — not an error).
    let s = TcpStream::connect(addr).unwrap();
    s.shutdown(Shutdown::Write).unwrap();
    drop(s);

    assert_schema_still_served(addr);
    server.shutdown().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Arbitrary byte blobs never panic or wedge the server, and never
    /// parse into a served query: the server either answers 400 or
    /// closes, then keeps serving the real protocol.
    #[test]
    fn server_survives_random_garbage(words in proptest::collection::vec(any::<u32>(), 0..128)) {
        let payload: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let server = WireServer::start("127.0.0.1:0", fixture(), ServeOptions::default()).unwrap();
        let addr = server.addr();
        let resp = poke(addr, &payload);
        if !resp.is_empty() {
            // Whatever came back must at least be parseable framing.
            let parsed = http::read_response(&mut std::io::BufReader::new(&resp[..]));
            if let Ok(r) = parsed {
                prop_assert!(r.status == 400 || r.status == 404 || r.status == 405,
                    "garbage drew status {}", r.status);
            }
        }
        assert_schema_still_served(addr);
        server.shutdown().unwrap();
    }
}

// ---------------------------------------------------------------------
// Client under attack: a fake server feeds it garbage responses.
// ---------------------------------------------------------------------

/// A one-shot fake server: answers `GET /schema` correctly (so the
/// connector's eager probe succeeds), then answers every other request
/// by writing `payload` raw and closing the connection.
fn fake_server(payload: Vec<u8>) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let schema_resp = {
        let shared = fixture();
        let body = proto::schema_body(shared.schema(), shared.k(), 200);
        let mut buf = Vec::new();
        http::write_response(&mut buf, &http::Response::json(200, body.into_bytes()), false)
            .unwrap();
        buf
    };
    let handle = std::thread::spawn(move || {
        // Serve connections until the attack payload has been delivered
        // once, then quit — the thread must not outlive the test.
        'accepting: loop {
            let Ok((stream, _)) = listener.accept() else {
                return;
            };
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
            loop {
                match http::read_request(&mut reader) {
                    Ok(Some(req)) if req.path == "/schema" => {
                        let _ = (&stream).write_all(&schema_resp);
                        let _ = (&stream).flush();
                    }
                    Ok(Some(_)) => {
                        let _ = (&stream).write_all(&payload);
                        let _ = (&stream).flush();
                        let _ = stream.shutdown(Shutdown::Both);
                        break 'accepting;
                    }
                    _ => break,
                }
            }
        }
    });
    (addr, handle)
}

/// Drives one query against a fake server that answers it with
/// `payload`; returns the client-side error.
fn attack_client(payload: &[u8]) -> hdc_types::DbError {
    let (addr, handle) = fake_server(payload.to_vec());
    let conn = HttpConnector::new(&addr.to_string())
        .expect("schema probe against the fake server")
        .timeout(Duration::from_millis(500));
    let mut db = conn.db(0);
    let err = db
        .query(&Query::any(conn.info().schema.arity()))
        .expect_err("corrupt response must not parse into an Ok");
    assert_eq!(db.consecutive_failures(), 1, "health counter must tick");
    drop(db);
    drop(conn);
    handle.join().unwrap();
    err
}

#[test]
fn client_turns_named_corruptions_into_clean_transients() {
    let oversized_header = format!(
        "HTTP/1.1 200 OK\r\nX-Junk: {}\r\n\r\n",
        "a".repeat(http::MAX_LINE + 10)
    );
    let named: &[(&str, Vec<u8>)] = &[
        ("mid-response disconnect (no bytes)", Vec::new()),
        ("truncated status line", b"HTTP/1.1 20".to_vec()),
        ("garbage status line", b"\xfftotally not http\r\n\r\n".to_vec()),
        (
            "non-numeric status",
            b"HTTP/1.1 abc OK\r\nContent-Length: 0\r\n\r\n".to_vec(),
        ),
        ("oversized header line", oversized_header.into_bytes()),
        (
            "half-written response (body shorter than content-length)",
            b"HTTP/1.1 200 OK\r\nContent-Length: 50\r\n\r\n{\"tup".to_vec(),
        ),
        (
            "oversized content-length",
            format!(
                "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n",
                http::MAX_BODY + 1
            )
            .into_bytes(),
        ),
        (
            "chunked transfer encoding",
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n".to_vec(),
        ),
        (
            "well-formed 200 carrying garbage JSON",
            b"HTTP/1.1 200 OK\r\nContent-Length: 9\r\n\r\nnot json!".to_vec(),
        ),
        (
            "well-formed 200 carrying truncated JSON",
            b"HTTP/1.1 200 OK\r\nContent-Length: 12\r\n\r\n{\"tuples\":[[".to_vec(),
        ),
    ];

    for (label, payload) in named {
        let err = attack_client(payload);
        assert!(
            err.is_transient(),
            "{label}: must be retryable for the crawl's retry loop, got {err:?}"
        );
    }
}

/// A fake server that accepts the query but never answers must trip the
/// client's read timeout — the suite completing at all proves the
/// client cannot hang past its deadline.
#[test]
fn client_times_out_cleanly_when_the_response_never_comes() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let schema_resp = {
        let shared = fixture();
        let body = proto::schema_body(shared.schema(), shared.k(), 200);
        let mut buf = Vec::new();
        http::write_response(&mut buf, &http::Response::json(200, body.into_bytes()), false)
            .unwrap();
        buf
    };
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
    let handle = std::thread::spawn(move || {
        let mut held = Vec::new();
        for _ in 0..2 {
            let Ok((stream, _)) = listener.accept() else {
                return;
            };
            let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
            if let Ok(Some(req)) = http::read_request(&mut reader) {
                if req.path == "/schema" {
                    let _ = (&stream).write_all(&schema_resp);
                }
                // Any other request: hold the socket open, say nothing.
            }
            held.push(stream);
        }
        // Keep the held sockets open (silent, not closed) until the
        // client has observed its timeout.
        let _ = done_rx.recv();
        drop(held);
    });

    let conn = HttpConnector::new(&addr.to_string())
        .unwrap()
        .timeout(Duration::from_millis(120));
    let mut db = conn.db(0);
    let start = std::time::Instant::now();
    let err = db
        .query(&Query::any(conn.info().schema.arity()))
        .unwrap_err();
    assert!(err.is_transient(), "got {err:?}");
    assert!(
        err.to_string().contains("timeout"),
        "timeout should be named, got {err}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "client hung far past its 120ms deadline"
    );
    drop(db);
    drop(conn);
    done_tx.send(()).unwrap();
    handle.join().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Arbitrary response blobs never panic the client and never parse
    /// into an `Ok`: every outcome is a clean `DbError`.
    #[test]
    fn client_survives_random_garbage_responses(
        words in proptest::collection::vec(any::<u32>(), 0..64),
    ) {
        let payload: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let err = attack_client(&payload);
        // Random bytes cannot be a well-formed success; whatever error
        // class they map to, it must carry a message.
        prop_assert!(!err.to_string().is_empty());
    }
}
