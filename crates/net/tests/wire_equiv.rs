//! Differential suite for the wire layer: a crawl over loopback HTTP is
//! **bit-identical** to the same crawl in-process.
//!
//! The claims under test:
//!
//! 1. **Loopback ≡ in-process.** `run_sharded(HttpConnector)` against
//!    `hdc serve` extracts the same bag at the same charged cost — down
//!    to per-shard costs, per-session accounting, and the outcome
//!    tallies — as `run_sharded(|_| shared.client())` on the same store.
//! 2. **Wire faults with retry ≡ fault-free.** The server-side fault
//!    injector charges nothing and the client charges nothing for failed
//!    requests, so a retried crawl over a faulty wire converges on the
//!    fault-free result exactly — including when the fault *stalls* past
//!    the client read timeout (timeout-as-transient path).
//! 3. **Budgets, retirement, drain.** Per-connection server budgets
//!    round-trip `BudgetExhausted` field-exactly; an identity retires
//!    after consecutive wire failures; a graceful shutdown answers the
//!    in-flight request in full before closing.
//! 4. **Checkpoint / kill / resume over the wire.** A crawl starved by a
//!    server-side budget salvages, keeps its checkpoint, and a resume
//!    against a restarted server completes with the uninterrupted bag
//!    and total cost.

use std::time::Duration;

use hdc_core::{Crawl, CrawlError, CrawlObserver, Flow, MemoryRepository, RetryPolicy};
use hdc_net::{http, FaultPlan, HttpConnector, ServeOptions, WireServer};
use hdc_server::{ServerConfig, SharedServer};
use hdc_types::{DbError, HiddenDatabase, Query, QueryOutcome, Tuple, TupleBag};

fn bag(tuples: &[Tuple]) -> TupleBag {
    TupleBag::from_tuples(tuples.iter().cloned())
}

/// The scaled Yahoo generator plants a hot listing with multiplicity
/// 100, so crawling fixtures need `k >= 100` to be solvable; the
/// non-crawling tests (budgets, retirement, drain) use smaller `k`.
fn fixture(n: usize, k: usize, seed: u64) -> SharedServer {
    let ds = hdc_data::yahoo::generate_scaled(n, 11);
    SharedServer::new(ds.schema.clone(), ds.tuples.clone(), ServerConfig { k, seed }).unwrap()
}

fn start(shared: &SharedServer, opts: ServeOptions) -> WireServer {
    WireServer::start("127.0.0.1:0", shared.clone(), opts).expect("bind loopback")
}

fn connector(server: &WireServer) -> HttpConnector {
    HttpConnector::new(&server.addr().to_string()).expect("schema fetch")
}

#[test]
fn loopback_sharded_crawl_equals_in_process_bit_identically() {
    let shared = fixture(2_000, 128, 17);
    let reference = Crawl::builder()
        .sessions(4)
        .oversubscribe(2)
        .run_sharded(|_s| shared.client())
        .unwrap();

    let server = start(&shared, ServeOptions::default());
    let wire = Crawl::builder()
        .sessions(4)
        .oversubscribe(2)
        .run_sharded(connector(&server))
        .unwrap();
    let stats = server.shutdown().unwrap();

    assert!(
        bag(&wire.merged.tuples).multiset_eq(&bag(&reference.merged.tuples)),
        "wire crawl changed the extracted bag"
    );
    assert_eq!(
        wire.merged.queries, reference.merged.queries,
        "wire crawl changed the charged cost"
    );
    assert_eq!(wire.merged.resolved, reference.merged.resolved);
    assert_eq!(wire.merged.overflowed, reference.merged.overflowed);
    assert_eq!(wire.merged.pruned, reference.merged.pruned);
    assert_eq!(
        wire.merged.metrics, reference.merged.metrics,
        "wire crawl changed the outcome tallies"
    );
    assert_eq!(wire.shards.len(), reference.shards.len());
    for (s, (a, b)) in wire.shards.iter().zip(&reference.shards).enumerate() {
        assert_eq!(a.report.queries, b.report.queries, "shard {s} cost diverged");
        assert_eq!(a.tuples, b.tuples, "shard {s} bag size diverged");
    }
    // The whole crawl crossed the wire: at least one connection per
    // working session identity (plus the connector's schema probe),
    // and every charged query rode some request — fewer requests than
    // charged queries because `/query_batch` packs a whole batch into
    // one round trip.
    assert!(stats.connections > 4, "4 identities + schema probe");
    assert!(stats.requests > 0 && stats.requests <= wire.merged.queries);
    assert_eq!(stats.faults_injected, 0);
}

#[test]
fn loopback_barrier_crawl_equals_in_process() {
    use hdc_barrier::BarrierCrawler;
    use hdc_core::Sharded;

    let shared = fixture(1_200, 112, 23);
    let crawler = BarrierCrawler::new();
    let reference = crawler
        .crawl_sharded_observed(Sharded::new(2).oversubscribed(2), |_s| shared.client(), None)
        .unwrap();

    let server = start(&shared, ServeOptions::default());
    let conn = connector(&server);
    let wire = crawler
        .crawl_sharded_observed(Sharded::new(2).oversubscribed(2), |s| conn.db(s), None)
        .unwrap();
    server.shutdown().unwrap();

    assert!(bag(&wire.sharded.merged.tuples).multiset_eq(&bag(&reference.sharded.merged.tuples)));
    assert_eq!(wire.sharded.merged.queries, reference.sharded.merged.queries);
    assert_eq!(wire.depth_histogram, reference.depth_histogram);
    assert_eq!(wire.max_depth, reference.max_depth);
}

#[test]
fn wire_faults_with_retry_equal_fault_free() {
    let shared = fixture(1_500, 128, 29);
    let reference = Crawl::builder()
        .sessions(2)
        .oversubscribe(3)
        .run_sharded(|_s| shared.client())
        .unwrap();

    let server = start(
        &shared,
        ServeOptions {
            budget: None,
            faults: Some(FaultPlan {
                rate: 0.15,
                seed: 0xfa57,
                stall: None,
            }),
            ..ServeOptions::default()
        },
    );
    let wire = Crawl::builder()
        .sessions(2)
        .oversubscribe(3)
        .retry(RetryPolicy::new(50).no_sleep())
        .run_sharded(connector(&server).retire_after(1_000))
        .unwrap();
    let stats = server.shutdown().unwrap();

    assert!(stats.faults_injected > 0, "the plan must actually have fired");
    assert!(
        bag(&wire.merged.tuples).multiset_eq(&bag(&reference.merged.tuples)),
        "wire faults changed the merged bag"
    );
    assert_eq!(
        wire.merged.queries, reference.merged.queries,
        "faulted requests must never be charged"
    );
    assert_eq!(wire.merged.resolved, reference.merged.resolved);
    assert_eq!(wire.merged.overflowed, reference.merged.overflowed);
    assert_eq!(wire.merged.pruned, reference.merged.pruned);
    assert!(wire.merged.metrics.transient_retries > 0, "retries happened");
}

/// Timeout-edge satellite: a stall longer than the client read timeout
/// surfaces as `DbError::Transient`, the stream is dropped, and the
/// identity recovers on reconnect.
#[test]
fn stalled_server_trips_client_read_timeout_as_transient() {
    let shared = fixture(300, 32, 31);
    let server = start(
        &shared,
        ServeOptions {
            budget: None,
            faults: Some(FaultPlan {
                rate: 1.0,
                seed: 7,
                stall: Some(Duration::from_millis(600)),
            }),
            ..ServeOptions::default()
        },
    );
    let mut db = connector(&server)
        .timeout(Duration::from_millis(60))
        .db(0);
    let err = db.query(&Query::any(shared.schema().arity())).unwrap_err();
    assert!(err.is_transient(), "timeout must be retryable, got {err:?}");
    assert!(
        err.to_string().contains("timeout"),
        "timeout should be named, got {err}"
    );
    assert_eq!(db.consecutive_failures(), 1);
    server.shutdown().unwrap();
}

/// Timeout-edge satellite, end to end: stalls past the client timeout
/// are retried and the crawl still matches fault-free bit-identically.
#[test]
fn stall_faults_with_retry_still_match_fault_free_bit_identically() {
    let shared = fixture(400, 112, 37);
    let reference = Crawl::builder()
        .sessions(1)
        .run_sharded(|_s| shared.client())
        .unwrap();

    let server = start(
        &shared,
        ServeOptions {
            budget: None,
            faults: Some(FaultPlan {
                rate: 0.10,
                seed: 0x57a11,
                stall: Some(Duration::from_millis(150)),
            }),
            ..ServeOptions::default()
        },
    );
    let wire = Crawl::builder()
        .sessions(1)
        .retry(RetryPolicy::new(50).no_sleep())
        .run_sharded(
            connector(&server)
                .timeout(Duration::from_millis(40))
                .retire_after(1_000),
        )
        .unwrap();
    let stats = server.shutdown().unwrap();

    assert!(stats.faults_injected > 0);
    assert!(bag(&wire.merged.tuples).multiset_eq(&bag(&reference.merged.tuples)));
    assert_eq!(wire.merged.queries, reference.merged.queries);
}

#[test]
fn per_connection_budget_round_trips_field_exactly() {
    let shared = fixture(300, 32, 41);
    let server = start(
        &shared,
        ServeOptions {
            budget: Some(2),
            faults: None,
            ..ServeOptions::default()
        },
    );
    let conn = connector(&server);
    let q = Query::any(shared.schema().arity());
    let mut db = conn.db(0);
    db.query(&q).unwrap();
    db.query(&q).unwrap();
    match db.query(&q).unwrap_err() {
        DbError::BudgetExhausted { issued, limit } => {
            assert_eq!((issued, limit), (2, 2), "fields must survive the wire");
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    // Budgets are per connection: a fresh identity gets a fresh quota.
    let mut other = conn.db(1);
    other.query(&q).unwrap();
    server.shutdown().unwrap();
}

#[test]
fn identity_retires_after_consecutive_wire_failures() {
    let shared = fixture(300, 32, 43);
    let server = start(&shared, ServeOptions::default());
    let conn = connector(&server).retire_after(3);
    let q = Query::any(shared.schema().arity());
    let mut db = conn.db(0);
    db.query(&q).unwrap();
    server.shutdown().unwrap(); // the server goes away for good

    for strike in 1..=3u32 {
        let err = db.query(&q).unwrap_err();
        assert!(
            err.is_transient(),
            "strike {strike} should still be transient, got {err:?}"
        );
        assert_eq!(db.consecutive_failures(), strike);
    }
    assert!(db.is_retired());
    // Past the threshold the identity fails permanently — the signal the
    // sharded crawler's identity-health salvage understands.
    let err = db.query(&q).unwrap_err();
    assert!(matches!(err, DbError::Backend(_)), "got {err:?}");
    assert!(err.to_string().contains("retired"));
}

/// Drain satellite: a shutdown that begins while a request is being
/// served (mid-stall here) must still answer that request in full — the
/// client sees the complete 503 body, never a reset or truncated frame.
#[test]
fn graceful_shutdown_answers_the_in_flight_request_in_full() {
    let shared = fixture(300, 32, 47);
    let server = start(
        &shared,
        ServeOptions {
            budget: None,
            faults: Some(FaultPlan {
                rate: 1.0,
                seed: 3,
                stall: Some(Duration::from_millis(400)),
            }),
            ..ServeOptions::default()
        },
    );
    let conn = connector(&server).timeout(Duration::from_secs(5));
    let arity = shared.schema().arity();
    let worker = std::thread::spawn(move || {
        let mut db = conn.db(0);
        db.query(&Query::any(arity)).unwrap_err()
    });
    // Let the request reach the handler and start stalling, then shut
    // down mid-stall. shutdown() blocks until the drain completes.
    std::thread::sleep(Duration::from_millis(120));
    server.shutdown().unwrap();

    let err = worker.join().unwrap();
    assert!(
        err.to_string().contains("injected wire fault"),
        "client must receive the complete 503 body through the drain, got: {err}"
    );
}

/// Checkpoint / kill / resume over the wire: starved by a per-connection
/// server budget, the crawl salvages and checkpoints; a resume against a
/// restarted (unbudgeted) server completes with the uninterrupted bag
/// and total accounting.
#[test]
fn wire_checkpoint_kill_resume_completes_exactly() {
    let shared = fixture(1_200, 112, 53);
    let uninterrupted = Crawl::builder()
        .oversubscribe(4)
        .run_sharded(|_s| shared.client())
        .unwrap();

    // Kill: the server meters each connection below the full cost.
    let starving = start(
        &shared,
        ServeOptions {
            budget: Some(uninterrupted.merged.queries / 2),
            faults: None,
            ..ServeOptions::default()
        },
    );
    let mut repo = MemoryRepository::default();
    let interrupted = Crawl::builder()
        .oversubscribe(4)
        .repository(&mut repo)
        .run_sharded(connector(&starving));
    starving.shutdown().unwrap();
    match interrupted {
        Err(CrawlError::Db { error, .. }) => {
            assert!(
                matches!(error, DbError::BudgetExhausted { .. }),
                "expected the server quota, got {error:?}"
            );
        }
        other => panic!("starved wire crawl must salvage, got {other:?}"),
    }
    let checkpointed = repo.saved().map(|cp| cp.shards.len()).unwrap_or(0);
    assert!(checkpointed > 0, "progress must have been checkpointed");

    // Resume: a restarted server on a fresh port, same repository.
    let restarted = start(&shared, ServeOptions::default());
    let resumed = Crawl::builder()
        .oversubscribe(4)
        .repository(&mut repo)
        .run_sharded(connector(&restarted))
        .unwrap();
    restarted.shutdown().unwrap();

    assert!(
        bag(&resumed.merged.tuples).multiset_eq(&bag(&uninterrupted.merged.tuples)),
        "wire resume must reconstruct the uninterrupted bag exactly"
    );
    assert_eq!(resumed.merged.queries, uninterrupted.merged.queries);
    let restored = resumed.shards.iter().filter(|s| s.restored).count();
    assert_eq!(restored, checkpointed, "checkpointed shards replay, not re-crawl");
}

/// One raw `GET` against the wire server, outside any crawl session.
fn scrape(addr: &str, path: &str) -> http::Response {
    use std::io::BufReader;
    let stream = std::net::TcpStream::connect(addr).expect("connect for scrape");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    http::write_request(&mut &stream, "GET", path, b"").expect("write scrape");
    http::read_response(&mut reader).expect("read scrape")
}

/// Telemetry is inert over the wire too: subscribing a slow observer to
/// a loopback crawl changes neither the bag, the charged cost, nor the
/// per-shard accounting — while `GET /metrics` and `GET /stats` answer
/// well-formed registry snapshots from the same server mid-crawl.
#[test]
fn observed_wire_crawl_is_bit_identical_and_metrics_answer_mid_crawl() {
    struct SlowTap {
        queries: u64,
        tuples: u64,
    }
    impl CrawlObserver for SlowTap {
        fn on_query(&mut self, _q: &Query, _out: &QueryOutcome) -> Flow {
            self.queries += 1;
            Flow::Continue
        }
        fn on_tuples(&mut self, tuples: &[Tuple]) -> Flow {
            self.tuples += tuples.len() as u64;
            // Slow consumer: back-pressures the event channel without
            // being allowed to change anything about the crawl.
            std::thread::sleep(Duration::from_micros(200));
            Flow::Continue
        }
    }

    let shared = fixture(1_500, 128, 29);
    let server = start(&shared, ServeOptions::default());
    let addr = server.addr().to_string();

    let reference = Crawl::builder()
        .sessions(3)
        .run_sharded(connector(&server))
        .unwrap();

    hdc_obs::set_enabled(true);
    let conn = connector(&server);
    let crawl = std::thread::spawn(move || {
        let mut tap = SlowTap { queries: 0, tuples: 0 };
        let report = Crawl::builder()
            .sessions(3)
            .observer(&mut tap)
            .run_sharded(|identity| conn.db(identity))
            .unwrap();
        (report, tap.queries, tap.tuples)
    });

    // Scrape the same server the observed crawl is hammering.
    let mut prometheus_ok = false;
    let mut stats_ok = false;
    while !(crawl.is_finished() && prometheus_ok && stats_ok) {
        let metrics = scrape(&addr, "/metrics");
        assert_eq!(metrics.status, 200, "/metrics must answer mid-crawl");
        let body = String::from_utf8_lossy(&metrics.body).into_owned();
        assert!(
            body.contains("# TYPE hdc_wire_server_requests_total counter"),
            "/metrics is not Prometheus text:\n{body}"
        );
        prometheus_ok = true;
        let stats = scrape(&addr, "/stats");
        assert_eq!(stats.status, 200, "/stats must answer mid-crawl");
        assert!(
            stats.body.starts_with(b"{\"counters\":["),
            "/stats is not the JSON registry dump"
        );
        stats_ok = true;
        std::thread::sleep(Duration::from_millis(2));
    }
    let (observed, tap_queries, tap_tuples) = crawl.join().expect("observed crawl thread");
    hdc_obs::set_enabled(false);
    server.shutdown().unwrap();

    assert!(
        bag(&observed.merged.tuples).multiset_eq(&bag(&reference.merged.tuples)),
        "subscribing an observer changed the wire crawl's bag"
    );
    assert_eq!(
        observed.merged.queries, reference.merged.queries,
        "subscribing an observer changed the wire crawl's charged cost"
    );
    assert_eq!(observed.shards.len(), reference.shards.len());
    for (sa, sb) in reference.shards.iter().zip(&observed.shards) {
        assert_eq!(sa.spec, sb.spec, "observer changed the shard plan");
        assert_eq!(
            sa.report.queries, sb.report.queries,
            "observer changed a shard's charged cost over the wire"
        );
    }
    assert_eq!(tap_queries, observed.merged.queries, "observer missed charged queries");
    assert_eq!(
        tap_tuples,
        observed.merged.tuples.len() as u64,
        "observer missed tuples"
    );
}
