//! Multi-day crawling under a per-day query quota, with free resume.
//!
//! Hidden databases meter queries per client per day (§1.1 — the reason
//! query count is the paper's cost metric). Two production tactics built
//! on the library's substrate:
//!
//! 1. **Resume across days** — the server is a deterministic adversary,
//!    so recorded responses replay for free: each day re-traverses
//!    yesterday's prefix from the local cache and extends it by one
//!    quota of fresh queries. Total charged queries equal the one-shot
//!    cost; the crawl finishes in ⌈cost/quota⌉ days.
//! 2. **Shard across identities** — with several client identities, the
//!    data space is partitioned (round-robin on the first categorical
//!    attribute) and crawled concurrently, dividing the per-identity load.
//!
//! Run with: `cargo run --release --example resumable_crawl`

use hidden_db_crawler::core::Sharded;
use hidden_db_crawler::data::yahoo;
use hidden_db_crawler::prelude::*;
use hidden_db_crawler::server::{DailyQuota, QueryCache, Replayer};

fn main() {
    let ds = yahoo::generate(13);
    let k = 256;
    let server = || {
        HiddenDbServer::new(
            ds.schema.clone(),
            ds.tuples.clone(),
            ServerConfig { k, seed: 2 },
        )
        .expect("valid database")
    };

    // One-shot reference cost.
    let mut db = server();
    let full = Hybrid::new().crawl(&mut db).expect("crawlable at k=256");
    println!(
        "dataset: {} (n = {}), k = {k}; one-shot crawl cost: {} queries\n",
        ds.name,
        ds.n(),
        full.queries
    );

    // ---- Tactic 1: resume across days under a 300/day quota -----------
    let per_day = 300;
    println!("crawling under a {per_day}-query/day quota with response replay:");
    let mut db = Replayer::new(DailyQuota::new(server(), per_day), QueryCache::new());
    let report = loop {
        match Hybrid::new().crawl(&mut db) {
            Ok(report) => break report,
            Err(CrawlError::Db {
                error: DbError::BudgetExhausted { .. },
                partial,
            }) => {
                println!(
                    "  day {:>2}: quota exhausted after {:>5} fresh queries, {:>6} tuples held, resuming tomorrow",
                    db.inner().day() + 1,
                    per_day,
                    partial.tuples.len()
                );
                db.inner_mut().next_day();
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    };
    verify_complete(&ds.tuples, &report).expect("complete");
    println!(
        "  day {:>2}: finished — {} tuples, {} total charged queries (one-shot cost was {})",
        db.inner().day() + 1,
        report.tuples.len(),
        db.inner().total_spent(),
        full.queries
    );
    println!(
        "  replay made resuming free: {} cache hits across restarts\n",
        db.cache_hits()
    );

    // ---- Tactic 2: shard across client identities ----------------------
    println!("sharding across client identities (concurrent sessions):");
    println!(
        "{:>9} {:>13} {:>19} {:>9}",
        "sessions", "total queries", "busiest session", "overhead"
    );
    let single = Sharded::new(1).crawl(|_| server()).expect("crawl succeeds");
    for sessions in [1usize, 2, 4, 8] {
        let report = Sharded::new(sessions)
            .crawl(|_| server())
            .expect("crawl succeeds");
        verify_complete(&ds.tuples, &report.merged).expect("complete");
        println!(
            "{sessions:>9} {:>13} {:>19} {:>8.2}×",
            report.merged.queries,
            report.max_session_queries(),
            report.merged.queries as f64 / single.merged.queries as f64
        );
    }
    println!("\nEach identity answers for a fraction of the load; the total overhead is");
    println!("the per-session slice tables that can no longer be shared.");
}
