//! Breaking the top-k barrier: surfacing what a search form never shows.
//!
//! A job-board front end ranks listings by a hidden "relevance" score and
//! shows at most `k` per search. One query therefore sees only the
//! k-visible frontier; everything ranked below it is invisible no matter
//! how often the query is repeated. The barrier crawler recovers those
//! hidden listings with discriminating queries and reports *how deep*
//! each one was buried.
//!
//! Run with: `cargo run --example barrier_breakout`

use hidden_db_crawler::prelude::*;

fn main() {
    // A small job board: sector (categorical) and salary (numeric).
    let schema = Schema::builder()
        .categorical("sector", 6)
        .numeric("salary", 20_000, 180_000)
        .build()
        .unwrap();
    let listings: Vec<Tuple> = (0..900u64)
        .map(|i| {
            let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
            Tuple::new(vec![
                Value::Cat((h % 6) as u32),
                Value::Int(20_000 + ((h >> 8) % 1_601) as i64 * 100),
            ])
        })
        .collect();

    let k = 50;
    let mut site = HiddenDbServer::new(
        schema.clone(),
        listings.clone(),
        ServerConfig { k, seed: 2024 },
    )
    .unwrap();

    // One naive probe: the front end shows k of 900 listings, and
    // repeating the query shows the same k forever.
    let first = site.query(&schema.full_query()).unwrap();
    assert!(first.overflow);
    println!(
        "naive probe: {} of {} listings visible (overflow: repeating reveals nothing new)",
        first.len(),
        listings.len()
    );

    // The barrier crawl: discriminating queries demote the visible
    // listings out of the window until everything has surfaced.
    let out = BarrierCrawler::new().crawl_report(&mut site).unwrap();
    verify_complete(&listings, &out.report).unwrap();
    println!(
        "barrier crawl: all {} listings recovered in {} queries ({} pivot expansions)",
        out.report.tuples.len(),
        out.report.queries,
        out.report.metrics.barrier_pivots
    );
    println!(
        "frontier {} | beyond the barrier {} | mean discovery depth {:.2}",
        out.frontier(),
        out.beyond_frontier(),
        out.mean_depth()
    );
    println!("depth histogram (how deep the barrier buried the data):");
    for (depth, count) in out.depth_histogram().iter().enumerate() {
        println!("  depth {depth}: {count:>4} listings  {}", "#".repeat((count / 8) as usize));
    }

    // The deepest listing: the one the ranking hid hardest.
    let deepest = out
        .discoveries
        .iter()
        .max_by_key(|d| d.depth)
        .expect("non-empty crawl");
    println!(
        "deepest discovery: {} first surfaced after {} discriminating refinements",
        deepest.tuple, deepest.depth
    );
}
