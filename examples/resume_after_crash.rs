//! Surviving a flaky, hostile backend: retries, then a crash, then resume.
//!
//! Real hidden databases fail in two ways the paper's cost model never
//! has to mention: individual requests error transiently (rate limits,
//! 503s), and whole crawls die mid-flight (bans, crashes, evictions).
//! The robustness layer handles both without giving up the library's
//! determinism guarantees:
//!
//! 1. **Transient faults + retry** — [`FaultyDb`] injects a seeded fault
//!    schedule; a [`RetryPolicy`] on the session rides it out. The crawl
//!    completes with the *bit-identical* bag at the *bit-identical*
//!    charged cost as the fault-free run — failed attempts never reach
//!    the server, so the only overhead is the retried attempts.
//! 2. **Crash + resume** — a [`JsonFileRepository`] checkpoints every
//!    completed shard to disk. When the process dies (simulated here by
//!    a hard query budget), a fresh process pointed at the same file
//!    replays the finished shards for free and pays only for the rest.
//!
//! Run with: `cargo run --release --example resume_after_crash`

use hidden_db_crawler::prelude::*;

fn main() {
    let ds = hidden_db_crawler::data::yahoo::generate_scaled(20_000, 9);
    let k = 256;
    let server = || {
        HiddenDbServer::new(
            ds.schema.clone(),
            ds.tuples.clone(),
            ServerConfig { k, seed: 3 },
        )
        .expect("valid database")
    };

    // Fault-free reference: the cost and bag every run below must match.
    let mut db = server();
    let clean = Crawl::builder()
        .strategy(Strategy::Auto)
        .run(&mut db)
        .expect("crawlable at k=256");
    verify_complete(&ds.tuples, &clean).expect("complete");
    println!(
        "dataset: {} (n = {}), k = {k}; fault-free cost: {} queries\n",
        ds.name,
        ds.n(),
        clean.queries
    );

    // ---- 1. Transient faults, ridden out by the retry policy ----------
    println!("crawling through a backend that faults 15% of all attempts:");
    let mut faulty = FaultyDb::new(
        server(),
        FaultConfig {
            seed: 77,
            transient_rate: 0.15,
            burst: 1,
            fail_after: None,
        },
    );
    let report = Crawl::builder()
        .strategy(Strategy::Auto)
        .retry(RetryPolicy::new(8).no_sleep())
        .run(&mut faulty)
        .expect("retry absorbs every transient fault");
    verify_complete(&ds.tuples, &report).expect("complete");
    assert_eq!(report.queries, clean.queries);
    println!(
        "  completed: {} tuples, {} charged queries (identical to fault-free),",
        report.tuples.len(),
        report.queries
    );
    println!(
        "  {} faults injected = {} retried attempts — the entire overhead\n",
        faulty.faults_injected(),
        report.metrics.transient_retries
    );

    // ---- 2. Crash mid-crawl, resume from the checkpoint file ----------
    let path = std::env::temp_dir().join("hdc_resume_after_crash.json");
    let _ = std::fs::remove_file(&path);

    // Uninterrupted reference for the checkpointed plan (checkpointing
    // routes the solo crawl through a sharded plan, whose total cost can
    // differ slightly from the monolithic crawl above).
    let mut scratch = MemoryRepository::new();
    let mut db = server();
    let one_shot = Crawl::builder()
        .strategy(Strategy::Auto)
        .oversubscribe(8)
        .repository(&mut scratch)
        .run(&mut db)
        .expect("crawlable");

    // First process: dies when a hard budget cuts the connection. Every
    // shard finished before the crash is already safe on disk.
    println!("first process: crawling with a checkpoint file, killed by a 150-query budget:");
    let mut repo = JsonFileRepository::new(&path);
    let mut db = server();
    // oversubscribe(8) splits the plan into 8 shards — the checkpoint
    // granularity: each finished shard is banked before the next starts.
    let crash = Crawl::builder()
        .strategy(Strategy::Auto)
        .oversubscribe(8)
        .budget(150)
        .repository(&mut repo)
        .run(&mut db);
    let (error, partial) = match crash {
        Err(CrawlError::Db { error, partial }) => (error, partial),
        other => panic!("expected the budget to kill the crawl, got {other:?}"),
    };
    let saved = repo
        .load()
        .expect("checkpoint readable")
        .expect("checkpoint written");
    let banked: u64 = saved.shards.iter().map(|s| s.queries).sum();
    println!("  died: {error}");
    println!(
        "  salvage: {} tuples handed back; {} shards ({} queries) banked in {}\n",
        partial.tuples.len(),
        saved.shards.len(),
        banked,
        path.display()
    );

    // Second process: same file, no shared state with the first — the
    // banked shards replay for free, only the remainder is charged.
    println!("second process: resuming from the checkpoint:");
    let mut repo = JsonFileRepository::new(&path);
    let mut db = server();
    let resumed = Crawl::builder()
        .strategy(Strategy::Auto)
        .oversubscribe(8)
        .repository(&mut repo)
        .run(&mut db)
        .expect("resume completes");
    verify_complete(&ds.tuples, &resumed).expect("complete");
    assert_eq!(resumed.queries, one_shot.queries);
    assert_eq!(db.queries_issued(), one_shot.queries - banked);
    println!(
        "  completed: {} tuples, {} total charged queries — the uninterrupted cost,",
        resumed.tuples.len(),
        resumed.queries
    );
    println!(
        "  of which only {} were issued after the crash ({} replayed from the checkpoint)",
        db.queries_issued(),
        resumed.queries - db.queries_issued()
    );
    let _ = std::fs::remove_file(&path);
}
