//! The paper's headline scenario: crawling a Yahoo!-Autos-scale hidden
//! database.
//!
//! §1.2: "for k = 1000, around 200 queries already suffice for crawling a
//! dataset containing 69,768 tuples from the hidden database at Yahoo!
//! Autos." This example reproduces that observation on the synthetic
//! Yahoo stand-in, and also demonstrates the k = 64 infeasibility from
//! Figure 12 (the dataset holds >64 identical tuples).
//!
//! Run with: `cargo run --release --example auto_marketplace`

use hidden_db_crawler::data::yahoo;
use hidden_db_crawler::prelude::*;

fn main() {
    let ds = yahoo::generate(7);
    let stats = DatasetStats::compute(&ds);
    println!("dataset: {} — n = {}, d = {}", ds.name, stats.n, ds.d());
    for a in &stats.attrs {
        println!(
            "  {:<12} {:>8}  ({} distinct)",
            a.name,
            a.figure9_cell(),
            a.distinct
        );
    }
    println!(
        "  max duplicate multiplicity: {} → crawlable only for k ≥ {}\n",
        stats.max_multiplicity,
        stats.min_feasible_k()
    );

    // The headline run: k = 1000.
    let k = 1000;
    let mut db = HiddenDbServer::new(
        ds.schema.clone(),
        ds.tuples.clone(),
        ServerConfig { k, seed: 1 },
    )
    .expect("valid database");
    let report = Hybrid::new().crawl(&mut db).expect("crawlable at k=1000");
    verify_complete(&ds.tuples, &report).expect("complete extraction");
    println!(
        "k = {k}: extracted all {} tuples in {} queries ({:.2}× the ideal n/k = {:.0})",
        report.tuples.len(),
        report.queries,
        report.queries as f64 / (ds.n() as f64 / k as f64),
        ds.n() as f64 / k as f64
    );

    // The infeasible run: k = 64 (more than 64 identical tuples exist).
    let k = 64;
    let mut db = HiddenDbServer::new(
        ds.schema.clone(),
        ds.tuples.clone(),
        ServerConfig { k, seed: 1 },
    )
    .expect("valid database");
    match Hybrid::new().crawl(&mut db) {
        Err(CrawlError::Unsolvable { witness, partial }) => {
            println!(
                "\nk = {k}: correctly detected as uncrawlable after {} queries",
                partial.queries
            );
            println!("  witness point query: {witness}");
            println!(
                "  tuples salvaged before detection: {}",
                partial.tuples.len()
            );
        }
        Ok(r) => panic!(
            "k = 64 should be infeasible, but crawl finished with {} queries",
            r.queries
        ),
        Err(e) => panic!("unexpected error: {e}"),
    }

    // Cost vs. k sweep (the Figure 12 Yahoo curve).
    println!("\ncost vs. k (Figure 12, Yahoo curve):");
    println!("{:>6} {:>10} {:>12}", "k", "queries", "queries/(n/k)");
    for k in [128usize, 256, 512, 1024] {
        let mut db = HiddenDbServer::new(
            ds.schema.clone(),
            ds.tuples.clone(),
            ServerConfig { k, seed: 1 },
        )
        .expect("valid database");
        let report = Hybrid::new().crawl(&mut db).expect("crawlable");
        println!(
            "{k:>6} {:>10} {:>12.2}",
            report.queries,
            report.queries as f64 / (ds.n() as f64 / k as f64)
        );
    }
}
