//! Crawling a purely categorical hidden database (the NSF awards
//! scenario), comparing the three §3 algorithms.
//!
//! DFS (the prior-art baseline), eager slice-cover (optimal but pays the
//! full `Σ Ui` preprocessing), and lazy-slice-cover (same bound, fetches
//! slices on demand) — the Figure 11 comparison, plus the §1.3
//! dependency-oracle heuristic on top of the winner.
//!
//! Run with: `cargo run --release --example award_catalog`

use hidden_db_crawler::data::nsf;
use hidden_db_crawler::data::ops;
use hidden_db_crawler::prelude::*;

fn main() {
    // Full NSF has a 29,042-value attribute; use the paper's d = 6
    // projection (Figure 11a) so the eager baseline finishes instantly.
    let full = nsf::generate(3);
    let (ds, chosen) = ops::project_top_distinct(&full, 6);
    println!(
        "dataset: {} over attributes {:?} — n = {}, Σ Ui = {}",
        ds.name,
        chosen
            .iter()
            .map(|&a| full.schema.attr(a).name())
            .collect::<Vec<_>>(),
        ds.n(),
        ds.schema.total_cat_domain()
    );

    let k = 256;
    println!("k = {k}, ideal n/k = {:.0}\n", ds.n() as f64 / k as f64);
    println!(
        "{:<18} {:>9} {:>10} {:>11}",
        "algorithm", "queries", "resolved", "overflowed"
    );

    let run = |crawler: &dyn Crawler| {
        let mut db = HiddenDbServer::new(
            ds.schema.clone(),
            ds.tuples.clone(),
            ServerConfig { k, seed: 2 },
        )
        .expect("valid database");
        let report = crawler.crawl(&mut db).expect("crawl succeeds");
        verify_complete(&ds.tuples, &report).expect("complete");
        println!(
            "{:<18} {:>9} {:>10} {:>11}",
            report.algorithm, report.queries, report.resolved, report.overflowed
        );
        report.queries
    };

    let dfs = run(&Dfs::new());
    let eager = run(&SliceCover::eager());
    let lazy = run(&SliceCover::lazy());

    // §1.3 heuristic: perfect dependency knowledge distilled from the data.
    let oracle = DatasetOracle::new(ds.tuples.clone());
    let lazy_oracle = run(&SliceCover::lazy_with_oracle(&oracle));

    println!(
        "\nlazy-slice-cover wins (paper Figure 11): {:.1}× cheaper than DFS,",
        dfs as f64 / lazy as f64
    );
    println!(
        "{:.1}× cheaper than eager slice-cover;",
        eager as f64 / lazy as f64
    );
    println!(
        "dependency pruning saves another {} queries.",
        lazy - lazy_oracle
    );
}
