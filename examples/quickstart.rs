//! Quickstart: crawl a small mixed-schema hidden database end to end.
//!
//! Builds a toy car-listing database, hides it behind a top-k interface,
//! crawls it with every applicable algorithm, and verifies completeness.
//!
//! Run with: `cargo run --release --example quickstart`

use hidden_db_crawler::prelude::*;

fn main() {
    // 1. A hidden database: 2,000 listings over a mixed schema.
    //    In the wild this would be a web form; here it's the simulator.
    let schema = Schema::builder()
        .categorical("make", 12)
        .categorical("body_style", 5)
        .numeric("year", 2000, 2012)
        .numeric("price", 500, 80_000)
        .build()
        .expect("valid schema");

    let tuples: Vec<Tuple> = (0..2_000u64)
        .map(|i| {
            let h = mix(i);
            let make = (h % 12) as u32;
            let body = ((h >> 8) % 5) as u32;
            let year = 2000 + ((h >> 16) % 13) as i64;
            let base = 6_000 + (make as i64) * 4_000;
            let price =
                (base - (2012 - year) * 900 + ((h >> 24) % 2_000) as i64).clamp(500, 80_000);
            Tuple::new(vec![
                Value::Cat(make),
                Value::Cat(body),
                Value::Int(year),
                Value::Int(price),
            ])
        })
        .collect();

    let k = 50;
    println!(
        "hidden database: {} tuples, schema [{}], k = {k}",
        tuples.len(),
        schema
    );
    println!(
        "ideal cost n/k = {:.0} queries\n",
        tuples.len() as f64 / k as f64
    );

    // 2. Crawl with the optimal mixed-space algorithm.
    let mut db = HiddenDbServer::new(schema.clone(), tuples.clone(), ServerConfig { k, seed: 42 })
        .expect("valid database");
    let report = Hybrid::new().crawl(&mut db).expect("crawl succeeds");
    verify_complete(&tuples, &report).expect("every tuple extracted exactly once");

    println!(
        "hybrid          : {:>6} queries  ({} tuples, {:.1}% resolved)",
        report.queries,
        report.tuples.len(),
        100.0 * report.resolution_rate()
    );

    // 3. Compare against crawling the numeric projection with both
    //    numeric algorithms (baseline vs optimal).
    let num_idx = schema.num_indices();
    let num_schema = schema.project(&num_idx);
    let num_tuples: Vec<Tuple> = tuples.iter().map(|t| t.project(&num_idx)).collect();

    for crawler in [&BinaryShrink::new() as &dyn Crawler, &RankShrink::new()] {
        let mut db = HiddenDbServer::new(
            num_schema.clone(),
            num_tuples.clone(),
            ServerConfig { k, seed: 42 },
        )
        .expect("valid database");
        let report = crawler.crawl(&mut db).expect("crawl succeeds");
        verify_complete(&num_tuples, &report).expect("complete");
        println!(
            "{:<16}: {:>6} queries  (numeric projection)",
            report.algorithm, report.queries
        );
    }

    println!("\nrank-shrink needs a small multiple of n/k regardless of domain width;");
    println!("binary-shrink pays for every halving of the declared domains.");
}

/// SplitMix64, for self-contained deterministic data.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}
