//! Declaring your own hidden database with the synthetic-dataset builder.
//!
//! The library ships the paper's three evaluation datasets, but real use
//! means modeling *your* target site. `SyntheticSpec` lets you declare a
//! schema column by column — skewed categories, functional dependencies,
//! zero-inflated and correlated numerics — and everything downstream
//! (server, crawlers, validators, theory bounds) works unchanged.
//!
//! The scenario: a used-electronics marketplace with 30,000 listings
//! behind a k = 100 search form.
//!
//! Run with: `cargo run --release --example custom_dataset`

use hidden_db_crawler::core::theory;
use hidden_db_crawler::data::synth::SyntheticSpec;
use hidden_db_crawler::prelude::*;

fn main() {
    // 1. Declare the marketplace.
    let spec = SyntheticSpec::builder("electronics", 30_000)
        .cat_zipf("brand", 60, 1.2) //            a few brands dominate
        .cat_weighted("condition", vec![55.0, 30.0, 15.0]) // used/refurb/new
        .cat_derived("seller_region", 0, 12, 0.08) // brands cluster by region
        .int_normal("battery_health", 82.0, 14.0, 1, 100)
        .int_zero_inflated("defect_count", 0.7, 12, 1, 15)
        .int_derived("price_cents", 3, 900.0, 5_000.0, 8_000.0, 500, 250_000)
        .build();
    let ds = spec.generate(2026);

    let stats = DatasetStats::compute(&ds);
    println!("dataset {} — n = {}, d = {}", stats.name, stats.n, ds.d());
    for a in &stats.attrs {
        println!(
            "  {:<15} {:>6}  ({} distinct)",
            a.name,
            a.figure9_cell(),
            a.distinct
        );
    }
    println!(
        "max duplicate multiplicity {} → crawlable for k ≥ {}\n",
        stats.max_multiplicity,
        stats.min_feasible_k()
    );

    // 2. Crawl it through a k = 100 interface and compare against the
    //    Lemma 9 bound for this custom schema.
    let k = 100;
    let cat_domains: Vec<u32> = ds
        .schema
        .cat_indices()
        .iter()
        .map(|&a| ds.schema.kind(a).domain_size().unwrap())
        .collect();
    let bound = theory::hybrid_bound(
        &cat_domains,
        ds.schema.num_indices().len(),
        ds.n() as f64,
        k as f64,
    );

    let mut db = HiddenDbServer::new(
        ds.schema.clone(),
        ds.tuples.clone(),
        ServerConfig { k, seed: 7 },
    )
    .expect("valid dataset");
    let report = Hybrid::new().crawl(&mut db).expect("crawl succeeds");
    verify_complete(&ds.tuples, &report).expect("complete extraction");

    println!(
        "hybrid @ k={k}: {} tuples in {} queries (ideal n/k = {:.0}, Lemma 9 bound = {bound:.0})",
        report.tuples.len(),
        report.queries,
        theory::ideal_cost(ds.n() as f64, k as f64)
    );
    let m = report.metrics;
    println!(
        "mechanics: {} slice fetches ({} overflowed), {} local answers, {} leaf sub-crawls,",
        m.slice_fetches, m.slice_overflows, m.local_answers, m.leaf_subcrawls
    );
    println!(
        "           {} 2-way / {} 3-way splits (zero-inflated defect_count forces heavy pivots)",
        m.two_way_splits, m.three_way_splits
    );

    // 3. The same declaration supports what-if analysis: how does cost
    //    scale if the site lowers k?
    println!("\nwhat-if: cost vs interface limit k");
    println!("{:>6} {:>9} {:>11}", "k", "queries", "vs ideal");
    for k in [25usize, 50, 100, 200, 400] {
        let mut db = HiddenDbServer::new(
            ds.schema.clone(),
            ds.tuples.clone(),
            ServerConfig { k, seed: 7 },
        )
        .expect("valid dataset");
        let report = Hybrid::new().crawl(&mut db).expect("crawl succeeds");
        println!(
            "{k:>6} {:>9} {:>10.2}×",
            report.queries,
            report.queries as f64 / (ds.n() as f64 / k as f64)
        );
    }
}
