//! One store, many clients: serving concurrent top-k traffic.
//!
//! The columnar store is immutable after load and the whole evaluation
//! path is `&self`, so a single `SharedServer` can answer any number of
//! concurrent sessions — each `client()` handle carries only its own
//! statistics, quota, and scratch buffers. This example serves a burst
//! of front-end threads from one store, then runs a sharded crawl whose
//! identities are clients of the same store instead of per-identity
//! clones of the data.
//!
//! Run with: `cargo run --release --example shared_serving`

use std::thread;

use hidden_db_crawler::data::yahoo;
use hidden_db_crawler::prelude::*;

fn main() {
    let ds = yahoo::generate(12);
    let k = 256;
    let shared = SharedServer::new(
        ds.schema.clone(),
        ds.tuples.clone(),
        ServerConfig { k, seed: 9 },
    )
    .expect("valid database");
    println!(
        "dataset: {} — n = {}, d = {}, k = {k}, one store",
        ds.name,
        ds.n(),
        ds.d()
    );

    // Front-end traffic: eight threads, each its own client with its own
    // quota, hammering the same store concurrently.
    let num = *ds.schema.num_indices().first().expect("yahoo has numeric attrs");
    let AttrKind::Numeric { min, max } = ds.schema.kind(num) else {
        unreachable!()
    };
    let answered: u64 = thread::scope(|s| {
        let handles: Vec<_> = (0..8usize)
            .map(|c| {
                let mut client = shared.client_with_budget(500);
                let arity = ds.schema.arity();
                s.spawn(move || {
                    let mut served = 0u64;
                    for i in 0..400i64 {
                        let width = (max - min) / (2 + (c as i64 + i) % 7);
                        let lo = min + (i * 37) % (max - min - width).max(1);
                        let mut preds = vec![Predicate::Any; arity];
                        preds[num] = Predicate::Range { lo, hi: lo + width };
                        match client.query(&Query::new(preds)) {
                            Ok(_) => served += 1,
                            Err(DbError::BudgetExhausted { .. }) => break,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                    served
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    println!("served {answered} queries across 8 concurrent budgeted clients");

    // The same store now backs a sharded crawl: identities are clients,
    // not clones, and the result is bit-identical to the clone-path.
    let report = Crawl::builder()
        .strategy(Strategy::Auto)
        .sessions(4)
        .run_sharded(|_identity| shared.client())
        .expect("crawl succeeds");
    verify_complete(&ds.tuples, &report.merged).expect("complete");
    println!(
        "sharded crawl over the shared store: {} tuples in {} queries ({} shards)",
        report.merged.tuples.len(),
        report.merged.queries,
        report.shards.len()
    );
}
