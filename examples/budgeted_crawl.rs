//! Crawling under a query quota, with progressive output.
//!
//! Real hidden databases cap queries per client per day (§1.1) — the very
//! reason query count is the cost metric. This example runs the optimal
//! crawler against a budget-enforcing interface: when the quota is too
//! small the crawl fails *gracefully*, returning every tuple extracted so
//! far, and the progress curve shows tuples arriving steadily (the
//! Figure 13 progressiveness property), so partial budgets still yield
//! proportional value.
//!
//! Run with: `cargo run --release --example budgeted_crawl`

use hidden_db_crawler::data::adult;
use hidden_db_crawler::prelude::*;

fn main() {
    let ds = adult::generate_numeric(11);
    let k = 256;
    println!(
        "dataset: {} — n = {}, d = {}, k = {k}",
        ds.name,
        ds.n(),
        ds.d()
    );

    // First, an unlimited run to learn the true cost.
    let mut db = HiddenDbServer::new(
        ds.schema.clone(),
        ds.tuples.clone(),
        ServerConfig { k, seed: 3 },
    )
    .expect("valid database");
    let full = RankShrink::new().crawl(&mut db).expect("crawl succeeds");
    verify_complete(&ds.tuples, &full).expect("complete");
    println!(
        "full crawl: {} queries, progress deviation from diagonal {:.3}\n",
        full.queries,
        full.progress_deviation()
    );

    // Now replay with budgets at 25%, 50%, 75% and 110% of that cost.
    println!(
        "{:>8} {:>10} {:>12} {:>14}",
        "budget", "queries", "tuples", "% of dataset"
    );
    for pct in [25u64, 50, 75, 110] {
        let budget = full.queries * pct / 100;
        let server = HiddenDbServer::new(
            ds.schema.clone(),
            ds.tuples.clone(),
            ServerConfig { k, seed: 3 },
        )
        .expect("valid database");
        let mut limited = Budgeted::new(server, budget);
        match RankShrink::new().crawl(&mut limited) {
            Ok(report) => {
                verify_complete(&ds.tuples, &report).expect("complete");
                println!(
                    "{budget:>8} {:>10} {:>12} {:>13.1}%  (finished)",
                    report.queries,
                    report.tuples.len(),
                    100.0 * report.tuples.len() as f64 / ds.n() as f64
                );
            }
            Err(CrawlError::Db {
                error: DbError::BudgetExhausted { .. },
                partial,
            }) => {
                println!(
                    "{budget:>8} {:>10} {:>12} {:>13.1}%  (budget exhausted)",
                    partial.queries,
                    partial.tuples.len(),
                    100.0 * partial.tuples.len() as f64 / ds.n() as f64
                );
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    println!("\nBecause output is progressive (near-diagonal curve), x% of the query");
    println!("budget returns roughly x% of the database — a crawler can stop anytime.");
}
