//! The one-stop crawl API: `Crawl::builder()` + streaming observer.
//!
//! One declarative path replaces the per-algorithm constructors, the
//! hand-wrapped budget decorators, and the end-of-crawl-only report:
//! pick a strategy (or let `Auto` pick the paper's choice for the
//! schema), set a budget, attach an observer for streaming events and
//! early termination, and run — solo or across client identities.
//!
//! ```text
//! cargo run --release --example builder_quickstart
//! ```

use hidden_db_crawler::prelude::*;

/// Stops the crawl once a tuple-coverage target is reached — the
/// "progressive crawler" use case of the paper's Figure 13: a crawler
/// that outputs steadily can be stopped at any coverage with
/// proportional spend.
struct CoverageTarget {
    target: u64,
    events: u64,
}

impl CrawlObserver for CoverageTarget {
    fn on_progress(&mut self, point: ProgressPoint) -> Flow {
        self.events += 1;
        if point.tuples >= self.target {
            Flow::Stop
        } else {
            Flow::Continue
        }
    }
}

fn main() {
    // An inventory with a mixed schema, behind a top-k interface.
    let schema = Schema::builder()
        .categorical("color", 4)
        .numeric("price", 0, 10_000)
        .build()
        .unwrap();
    let tuples: Vec<Tuple> = (0..2_000)
        .map(|i| Tuple::new(vec![Value::Cat(i % 4), Value::Int((i as i64 * 37) % 10_000)]))
        .collect();
    let serve = || {
        HiddenDbServer::new(schema.clone(), tuples.clone(), ServerConfig { k: 50, seed: 42 })
            .unwrap()
    };

    // 1. The one-liner: Auto picks hybrid for this mixed schema, the
    //    budget rides along without hand-wrapping the server.
    let mut db = serve();
    let report = Crawl::builder()
        .strategy(Strategy::Auto)
        .budget(10_000)
        .run(&mut db)
        .unwrap();
    verify_complete(&tuples, &report).unwrap();
    println!(
        "auto crawl: {} ({} slice-cache hits)",
        report, report.metrics.slice_cache_hits
    );

    // 2. Streaming + early stop: consume tuples as they arrive and stop
    //    at 50% coverage. The partial report is a prefix-consistent
    //    subset of the full crawl (differential suite: builder_equiv.rs).
    let mut observer = CoverageTarget {
        target: tuples.len() as u64 / 2,
        events: 0,
    };
    let mut db = serve();
    let err = Crawl::builder()
        .observer(&mut observer)
        .run(&mut db)
        .unwrap_err();
    let partial = match err {
        CrawlError::Stopped { partial } => *partial,
        other => panic!("expected an observer stop, got {other}"),
    };
    println!(
        "stopped at 50% coverage: {} of {} tuples for {} of {} queries \
         ({} progress events streamed)",
        partial.tuples.len(),
        tuples.len(),
        partial.queries,
        report.queries,
        observer.events
    );
    assert!(partial.tuples.len() >= tuples.len() / 2);
    assert!(partial.queries < report.queries);

    // 3. Multi-session: the same builder routes through the
    //    work-stealing sharded pool — one connection per identity, a
    //    per-identity budget, bit-identical bags and per-shard costs to
    //    the legacy Sharded entry point.
    let sharded = Crawl::builder()
        .sessions(3)
        .oversubscribe(4)
        .budget(10_000)
        .run_sharded(|_identity| serve())
        .unwrap();
    verify_complete(&tuples, &sharded.merged).unwrap();
    println!(
        "sharded crawl: {} tuples over {} shards on 3 identities ({} stolen)",
        sharded.merged.tuples.len(),
        sharded.shards.len(),
        sharded.steals()
    );

    // 4. External crawlers ride the same path: the second paper's
    //    barrier crawler plugs in as a custom strategy.
    let barrier = BarrierCrawler::new();
    let mut db = serve();
    let report = Crawl::builder()
        .strategy(Strategy::Custom(&barrier))
        .run(&mut db)
        .unwrap();
    println!(
        "custom strategy: {} ({} deep tuples surfaced)",
        report, report.metrics.barrier_deep_tuples
    );
}
