//! The §4 lower-bound constructions, run empirically.
//!
//! Theorem 3 (numeric): any algorithm needs ≥ d·m queries on the Figure 7
//! dataset. Theorem 4 (categorical): Ω(d·U²) queries on the Figure 8
//! dataset. This example runs the optimal algorithms on both adversarial
//! families and shows the measured cost pinched between the lower bound
//! and the Theorem 1 upper bound — the sandwich that proves asymptotic
//! optimality.
//!
//! Run with: `cargo run --release --example adversarial_bounds`

use hidden_db_crawler::core::theory;
use hidden_db_crawler::data::hard;
use hidden_db_crawler::prelude::*;

fn main() {
    println!("Theorem 3: hard numeric data (k tuples per diagonal point, d non-diagonals)");
    println!(
        "{:>4} {:>4} {:>6} {:>8} {:>12} {:>10} {:>12}",
        "d", "k", "m", "n", "lower d·m", "measured", "upper 20dn/k"
    );
    for (d, k, m) in [
        (2usize, 8usize, 50usize),
        (4, 16, 50),
        (4, 16, 200),
        (8, 32, 100),
    ] {
        let ds = hard::numeric_hard(k, d, m);
        let mut db = HiddenDbServer::new(
            ds.schema.clone(),
            ds.tuples.clone(),
            ServerConfig { k, seed: 4 },
        )
        .expect("valid database");
        let report = RankShrink::new()
            .crawl(&mut db)
            .expect("solvable: max multiplicity = k");
        verify_complete(&ds.tuples, &report).expect("complete");
        let lower = theory::numeric_lower_bound(d, m);
        let upper = theory::rank_shrink_bound(d, ds.n() as f64, k as f64);
        assert!(report.queries as f64 >= lower, "lower bound violated?!");
        assert!((report.queries as f64) <= upper, "upper bound violated?!");
        println!(
            "{d:>4} {k:>4} {m:>6} {:>8} {lower:>12.0} {:>10} {upper:>12.0}",
            ds.n(),
            report.queries
        );
    }

    println!("\nTheorem 4: hard categorical data (d = 2k attributes, domain size U)");
    println!(
        "{:>4} {:>4} {:>4} {:>8} {:>14} {:>10} {:>14}",
        "d", "k", "U", "n", "lower d·U²/8", "measured", "upper Lemma 4"
    );
    for (k, u) in [(3usize, 3u32), (4, 4), (6, 6), (8, 8)] {
        let ds = hard::categorical_hard(k, u);
        let d = 2 * k;
        let mut db = HiddenDbServer::new(
            ds.schema.clone(),
            ds.tuples.clone(),
            ServerConfig { k, seed: 5 },
        )
        .expect("valid database");
        let report = SliceCover::lazy().crawl(&mut db).expect("solvable");
        verify_complete(&ds.tuples, &report).expect("complete");
        let lower = theory::categorical_lower_bound(d, u);
        let upper = theory::slice_cover_bound(&vec![u; d], ds.n() as f64, k as f64);
        let conds = hard::categorical_hard_conditions_hold(k, u);
        println!(
            "{d:>4} {k:>4} {u:>4} {:>8} {lower:>14.0} {:>10} {upper:>14.0}{}",
            ds.n(),
            report.queries,
            if conds {
                ""
            } else {
                "   (side conditions not met: bound informational)"
            }
        );
        assert!((report.queries as f64) <= upper, "upper bound violated?!");
    }

    println!("\nOn the hard families the measured cost sits between the §4 lower bounds");
    println!("and the Theorem 1 upper bounds — the algorithms are asymptotically optimal.");
}
